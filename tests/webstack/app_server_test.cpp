#include "webstack/app_server.hpp"

#include <gtest/gtest.h>

#include "../support/parked.hpp"

namespace ah::webstack {
namespace {

using common::SimTime;

class AppServerTest : public ::testing::Test {
 protected:
  AppServerTest() : node_(sim_, 0, "a0", {}) {}

  DbQueryFn stub_db(SimTime latency = SimTime::millis(5)) {
    return [this, latency](const DbQuery&, cluster::Node&, DbResultFn done) {
      ++db_queries_;
      sim_.schedule(latency, [done = test::park(std::move(done))]() mutable {
        (*done)(DbResult{true});
      });
    };
  }

  static RequestProfile servlet_profile(int selects = 0) {
    RequestProfile p;
    p.name = "servlet";
    p.cacheable = false;
    p.response_bytes = 8192;
    p.app_cpu = SimTime::millis(5);
    p.queries[0] = selects;
    return p;
  }

  Request make_request(const RequestProfile& profile) {
    Request r;
    r.id = next_id_++;
    r.profile = &profile;
    r.object_id = r.id;
    r.response_bytes = profile.response_bytes;
    r.issued_at = sim_.now();
    return r;
  }

  sim::Simulator sim_;
  cluster::Node node_;
  int db_queries_ = 0;
  std::uint64_t next_id_ = 1;
};

TEST_F(AppServerTest, ServesSimpleRequest) {
  AppServer app(sim_, node_, stub_db(), AppParams{});
  const auto profile = servlet_profile();
  Response out;
  app.handle(make_request(profile), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.origin, Response::Origin::kApp);
  EXPECT_EQ(app.stats().served, 1u);
  EXPECT_EQ(db_queries_, 0);
}

TEST_F(AppServerTest, IssuesConfiguredQueryCount) {
  AppServer app(sim_, node_, stub_db(), AppParams{});
  const auto profile = servlet_profile(3);
  Response out;
  app.handle(make_request(profile), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.origin, Response::Origin::kDb);
  EXPECT_EQ(db_queries_, 3);
  EXPECT_EQ(app.stats().db_queries, 3u);
}

TEST_F(AppServerTest, MixedQueryClassesAllIssued) {
  AppServer app(sim_, node_, stub_db(), AppParams{});
  RequestProfile profile = servlet_profile();
  profile.queries[0] = 2;  // selects
  profile.queries[1] = 1;  // join
  profile.queries[2] = 2;  // updates
  profile.queries[3] = 1;  // insert
  Response out;
  app.handle(make_request(profile), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(db_queries_, 6);
}

TEST_F(AppServerTest, HttpQueueOverflowRejects) {
  AppParams params;
  params.max_processors = 1;
  params.accept_count = 1;
  AppServer app(sim_, node_, stub_db(SimTime::millis(50)), params);
  const auto profile = servlet_profile(1);
  int ok = 0;
  int errors = 0;
  auto record = [&](const Response& r) { r.ok ? ++ok : ++errors; };
  app.handle(make_request(profile), record);  // takes the thread
  app.handle(make_request(profile), record);  // queues
  app.handle(make_request(profile), record);  // rejected
  sim_.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(app.stats().rejected_http, 1u);
}

TEST_F(AppServerTest, AjpOverflowReleasesHttpThread) {
  AppParams params;
  params.max_processors = 10;
  params.accept_count = 10;
  params.ajp_max_processors = 1;
  params.ajp_accept_count = 0;  // no AJP waiting room
  AppServer app(sim_, node_, stub_db(SimTime::millis(50)), params);
  const auto profile = servlet_profile(1);
  int errors = 0;
  int ok = 0;
  auto record = [&](const Response& r) { r.ok ? ++ok : ++errors; };
  app.handle(make_request(profile), record);
  app.handle(make_request(profile), record);
  sim_.run();
  EXPECT_EQ(ok + errors, 2);
  EXPECT_EQ(app.stats().rejected_ajp, static_cast<std::uint64_t>(errors));
  // All HTTP threads must have been released.
  EXPECT_EQ(app.http_pool().in_use(), 0);
  EXPECT_EQ(app.ajp_pool().in_use(), 0);
}

TEST_F(AppServerTest, ThreadGrowthChargesMemory) {
  AppParams params;
  params.min_processors = 1;
  params.max_processors = 8;
  AppServer app(sim_, node_, stub_db(SimTime::millis(20)), params);
  const auto before = node_.memory_used();
  const auto profile = servlet_profile(1);
  for (int i = 0; i < 4; ++i) {
    app.handle(make_request(profile), [](const Response&) {});
  }
  sim_.run_until(SimTime::millis(1));
  EXPECT_GT(node_.memory_used(), before);
  EXPECT_GT(app.stats().threads_spawned, 0u);
}

TEST_F(AppServerTest, BiggerBufferMeansFewerSyscallsFasterIo) {
  AppParams small;
  small.buffer_size = 512;
  AppParams big;
  big.buffer_size = 65536;
  AppServer app_small(sim_, node_, stub_db(), small);
  AppServer app_big(sim_, node_, stub_db(), big);

  RequestProfile profile = servlet_profile();
  profile.response_bytes = 64 * 1024;
  profile.app_cpu = SimTime::zero();

  SimTime small_done;
  app_small.handle(make_request(profile),
                   [&](const Response&) { small_done = sim_.now(); });
  sim_.run();
  const SimTime t0 = sim_.now();
  SimTime big_done;
  app_big.handle(make_request(profile),
                 [&](const Response&) { big_done = sim_.now(); });
  sim_.run();
  EXPECT_GT(small_done - SimTime::zero(), big_done - t0);
}

TEST_F(AppServerTest, ReconfigureResizesPools) {
  AppServer app(sim_, node_, stub_db(), AppParams{});
  AppParams bigger;
  bigger.max_processors = 200;
  bigger.ajp_max_processors = 150;
  app.reconfigure(bigger);
  EXPECT_EQ(app.http_pool().slots(), 200);
  EXPECT_EQ(app.ajp_pool().slots(), 150);
}

TEST_F(AppServerTest, InactiveRejects) {
  AppServer app(sim_, node_, stub_db(), AppParams{});
  app.set_active(false);
  Response out;
  const auto profile = servlet_profile();
  app.handle(make_request(profile), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_FALSE(out.ok);
}

TEST_F(AppServerTest, DeactivateReleasesMemory) {
  AppServer app(sim_, node_, stub_db(), AppParams{});
  const auto active_memory = node_.memory_used();
  app.set_active(false);
  EXPECT_LT(node_.memory_used(), active_memory);
}

TEST_F(AppServerTest, DbErrorPropagatesAndReleasesThreads) {
  DbQueryFn failing = [](const DbQuery&, cluster::Node&, DbResultFn done) {
    done(DbResult{false});
  };
  AppServer app(sim_, node_, std::move(failing), AppParams{});
  const auto profile = servlet_profile(2);
  Response out;
  app.handle(make_request(profile), [&](const Response& r) { out = r; });
  sim_.run();
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(app.http_pool().in_use(), 0);
  EXPECT_EQ(app.ajp_pool().in_use(), 0);
}

TEST_F(AppServerTest, ConcurrencyBoundedByMaxProcessors) {
  AppParams params;
  params.max_processors = 3;
  params.accept_count = 100;
  AppServer app(sim_, node_, stub_db(SimTime::millis(100)), params);
  const auto profile = servlet_profile(1);
  for (int i = 0; i < 10; ++i) {
    app.handle(make_request(profile), [](const Response&) {});
  }
  EXPECT_LE(app.http_pool().in_use(), 3);
  sim_.run();
  EXPECT_EQ(app.stats().served, 10u);
}

}  // namespace
}  // namespace ah::webstack
