#include "webstack/db_server.hpp"

#include <gtest/gtest.h>

namespace ah::webstack {
namespace {

using common::SimTime;

class DbServerTest : public ::testing::Test {
 protected:
  DbServerTest() : node_(sim_, 0, "d0", {}) {}

  DbQuery query(QueryClass cls, std::uint64_t table = 0) {
    DbQuery q;
    q.cls = cls;
    q.table_id = table;
    q.result_bytes = 1024;
    return q;
  }

  /// Executes one query to completion and returns the wall time it took.
  SimTime timed(DbServer& db, const DbQuery& q) {
    const SimTime start = sim_.now();
    SimTime end = start;
    db.execute(q, [&](const DbResult& r) {
      EXPECT_TRUE(r.ok);
      end = sim_.now();
    });
    sim_.run();
    return end - start;
  }

  sim::Simulator sim_;
  cluster::Node node_;
};

TEST_F(DbServerTest, ExecutesAllQueryClasses) {
  DbServer db(sim_, node_, DbParams{});
  int done = 0;
  for (int c = 0; c < kQueryClassCount; ++c) {
    db.execute(query(static_cast<QueryClass>(c)),
               [&](const DbResult& r) {
                 EXPECT_TRUE(r.ok);
                 ++done;
               });
  }
  sim_.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(db.stats().queries, 4u);
  for (int c = 0; c < kQueryClassCount; ++c) {
    EXPECT_EQ(db.stats().by_class[c], 1u);
  }
}

TEST_F(DbServerTest, JoinsSlowerThanSimpleSelects) {
  DbServer db(sim_, node_, DbParams{}, 7);
  SimTime select_total;
  SimTime join_total;
  for (int i = 0; i < 20; ++i) {
    select_total += timed(db, query(QueryClass::kSelectSimple));
    join_total += timed(db, query(QueryClass::kSelectJoin));
  }
  EXPECT_GT(join_total, select_total);
}

TEST_F(DbServerTest, ThreadConcurrencyLimitsExecutors) {
  DbParams params;
  params.thread_concurrency = 2;
  DbServer db(sim_, node_, params);
  for (int i = 0; i < 8; ++i) {
    db.execute(query(QueryClass::kSelectSimple), [](const DbResult&) {});
  }
  EXPECT_LE(db.executors().in_use(), 2);
  sim_.run();
  EXPECT_EQ(db.stats().queries, 8u);
}

TEST_F(DbServerTest, ConnectionsQueueBeyondLimit) {
  DbParams params;
  params.max_connections = 3;
  DbServer db(sim_, node_, params);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    db.execute(query(QueryClass::kSelectSimple),
               [&](const DbResult&) { ++done; });
  }
  EXPECT_LE(db.connections().in_use(), 3);
  sim_.run();
  EXPECT_EQ(done, 10);  // queued connections eventually serve
}

TEST_F(DbServerTest, SmallBinlogCacheSpills) {
  DbParams params;
  params.binlog_cache_size = 4096;  // far below the median txn volume
  DbServer db(sim_, node_, params, 11);
  for (int i = 0; i < 50; ++i) {
    db.execute(query(QueryClass::kUpdate), [](const DbResult&) {});
  }
  sim_.run();
  EXPECT_GT(db.stats().binlog_spills, 40u);
}

TEST_F(DbServerTest, LargeBinlogCacheAvoidsSpills) {
  DbParams params;
  params.binlog_cache_size = 4 * 1024 * 1024;
  DbServer db(sim_, node_, params, 11);
  for (int i = 0; i < 50; ++i) {
    db.execute(query(QueryClass::kUpdate), [](const DbResult&) {});
  }
  sim_.run();
  EXPECT_EQ(db.stats().binlog_spills, 0u);
}

TEST_F(DbServerTest, UpdatesFasterWithLargeBinlogCache) {
  DbParams small;
  small.binlog_cache_size = 4096;
  DbParams large;
  large.binlog_cache_size = 4 * 1024 * 1024;
  DbServer db_small(sim_, node_, small, 3);
  SimTime small_total;
  for (int i = 0; i < 30; ++i) {
    small_total += timed(db_small, query(QueryClass::kUpdate));
  }
  DbServer db_large(sim_, node_, large, 3);
  SimTime large_total;
  for (int i = 0; i < 30; ++i) {
    large_total += timed(db_large, query(QueryClass::kUpdate));
  }
  EXPECT_GT(small_total, large_total);
}

TEST_F(DbServerTest, JoinBufferFlatAboveFloor) {
  // The paper's negative finding: shrinking join_buffer_size from 8 MB to
  // ~400 KB does not change performance.
  DbParams big;
  big.join_buffer_size = 8388600;
  DbParams modest;
  modest.join_buffer_size = 407552;
  DbServer db_big(sim_, node_, big, 5);
  DbServer db_modest(sim_, node_, modest, 5);
  SimTime big_total;
  SimTime modest_total;
  for (int i = 0; i < 30; ++i) {
    big_total += timed(db_big, query(QueryClass::kSelectJoin));
    modest_total += timed(db_modest, query(QueryClass::kSelectJoin));
  }
  const double ratio = modest_total / big_total;
  EXPECT_NEAR(ratio, 1.0, 0.10);
}

TEST_F(DbServerTest, JoinBufferBelowFloorDegrades) {
  DbParams tiny;
  tiny.join_buffer_size = 131072;  // below the modelled floor
  DbParams modest;
  modest.join_buffer_size = 407552;
  DbServer db_tiny(sim_, node_, tiny, 5);
  DbServer db_modest(sim_, node_, modest, 5);
  SimTime tiny_total;
  SimTime modest_total;
  for (int i = 0; i < 30; ++i) {
    tiny_total += timed(db_tiny, query(QueryClass::kSelectJoin));
    modest_total += timed(db_modest, query(QueryClass::kSelectJoin));
  }
  EXPECT_GT(tiny_total, modest_total);
}

TEST_F(DbServerTest, DelayedInsertsBatch) {
  DbParams params;
  params.delayed_insert_limit = 10;
  DbServer db(sim_, node_, params);
  for (int i = 0; i < 25; ++i) {
    db.execute(query(QueryClass::kInsert), [](const DbResult&) {});
  }
  sim_.run();
  EXPECT_EQ(db.stats().delayed_batches, 2u);  // two full batches of 10
}

TEST_F(DbServerTest, InsertQueueOverflowFallsBackToSync) {
  DbParams params;
  params.delayed_insert_limit = 1000;  // batches never trigger
  params.delayed_queue_size = 100;     // effective batch bound
  DbServer db(sim_, node_, params);
  for (int i = 0; i < 150; ++i) {
    db.execute(query(QueryClass::kInsert), [](const DbResult&) {});
  }
  sim_.run();
  EXPECT_GT(db.stats().delayed_batches + db.stats().sync_inserts, 0u);
}

TEST_F(DbServerTest, TableCachePressureCausesMisses) {
  DbParams starved;
  starved.table_cache = 16;
  starved.thread_concurrency = 64;
  starved.max_connections = 64;
  DbServer db(sim_, node_, starved, 13);
  // Keep many connections active at once so descriptor demand exceeds the
  // table cache.
  for (int i = 0; i < 200; ++i) {
    db.execute(query(QueryClass::kSelectSimple, i % 8),
               [](const DbResult&) {});
  }
  sim_.run();
  EXPECT_GT(db.stats().table_cache_misses, 0u);
}

TEST_F(DbServerTest, LargeTableCacheEliminatesMisses) {
  DbParams roomy;
  roomy.table_cache = 2048;
  roomy.thread_concurrency = 64;
  DbServer db(sim_, node_, roomy, 13);
  for (int i = 0; i < 200; ++i) {
    db.execute(query(QueryClass::kSelectSimple, i % 8),
               [](const DbResult&) {});
  }
  sim_.run();
  EXPECT_EQ(db.stats().table_cache_misses, 0u);
}

TEST_F(DbServerTest, InactiveFails) {
  DbServer db(sim_, node_, DbParams{});
  db.set_active(false);
  bool ok = true;
  db.execute(query(QueryClass::kSelectSimple),
             [&](const DbResult& r) { ok = r.ok; });
  sim_.run();
  EXPECT_FALSE(ok);
}

TEST_F(DbServerTest, ReconfigureResizesPools) {
  DbServer db(sim_, node_, DbParams{});
  DbParams bigger;
  bigger.max_connections = 700;
  bigger.thread_concurrency = 80;
  db.reconfigure(bigger);
  EXPECT_EQ(db.connections().slots(), 700);
  EXPECT_EQ(db.executors().slots(), 80);
}

TEST_F(DbServerTest, MemoryReleasedAfterQuiescence) {
  DbServer db(sim_, node_, DbParams{});
  const auto idle = node_.memory_used();
  for (int i = 0; i < 5; ++i) {
    db.execute(query(QueryClass::kSelectJoin), [](const DbResult&) {});
  }
  sim_.run();
  EXPECT_EQ(node_.memory_used(), idle);  // per-query memory all returned
}

}  // namespace
}  // namespace ah::webstack
