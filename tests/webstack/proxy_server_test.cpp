#include "webstack/proxy_server.hpp"

#include <gtest/gtest.h>

#include "../support/parked.hpp"

#include <vector>

namespace ah::webstack {
namespace {

using common::SimTime;

class ProxyServerTest : public ::testing::Test {
 protected:
  ProxyServerTest() : node_(sim_, 0, "p0", {}) {}

  /// Upstream stub: replies ok after a fixed delay; counts forwards.
  ForwardFn stub_upstream(common::Bytes reply_bytes = 8192,
                          SimTime delay = SimTime::millis(20)) {
    return [this, reply_bytes, delay](const Request&, cluster::Node&,
                                      ResponseFn done) {
      ++forwards_;
      sim_.schedule(delay,
                    [reply_bytes, done = test::park(std::move(done))]() mutable {
        (*done)(Response{true, Response::Origin::kApp, reply_bytes});
      });
    };
  }

  static RequestProfile cacheable_profile() {
    RequestProfile p;
    p.name = "static";
    p.cacheable = true;
    p.response_bytes = 8192;
    p.proxy_cpu = SimTime::micros(500);
    return p;
  }

  static RequestProfile dynamic_profile() {
    RequestProfile p;
    p.name = "dynamic";
    p.cacheable = false;
    p.response_bytes = 8192;
    p.proxy_cpu = SimTime::micros(500);
    return p;
  }

  Request make_request(const RequestProfile& profile, std::uint64_t object) {
    Request r;
    r.id = next_id_++;
    r.profile = &profile;
    r.object_id = object;
    r.response_bytes = profile.response_bytes;
    r.issued_at = sim_.now();
    return r;
  }

  Response serve(ProxyServer& proxy, const Request& request) {
    Response out;
    bool completed = false;
    proxy.handle(request, [&](const Response& r) {
      out = r;
      completed = true;
    });
    sim_.run();
    EXPECT_TRUE(completed);
    return out;
  }

  sim::Simulator sim_;
  cluster::Node node_;
  int forwards_ = 0;
  std::uint64_t next_id_ = 1;
};

TEST_F(ProxyServerTest, NonCacheablePassesThrough) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  const auto profile = dynamic_profile();
  const auto response = serve(proxy, make_request(profile, 1));
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(forwards_, 1);
  EXPECT_EQ(proxy.stats().passthrough, 1u);
  EXPECT_EQ(proxy.stats().mem_hits, 0u);
}

TEST_F(ProxyServerTest, CacheableMissThenDiskHit) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  const auto profile = cacheable_profile();
  serve(proxy, make_request(profile, 42));
  EXPECT_EQ(proxy.stats().misses_forwarded, 1u);
  const auto second = serve(proxy, make_request(profile, 42));
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(forwards_, 1);  // no second forward
  EXPECT_EQ(proxy.stats().disk_hits + proxy.stats().mem_hits, 1u);
}

TEST_F(ProxyServerTest, SmallObjectsServeFromMemory) {
  ProxyParams params;
  params.maximum_object_size_in_memory = 16 * 1024;  // raised limit
  ProxyServer proxy(sim_, node_, stub_upstream(4096), params);
  auto profile = cacheable_profile();
  profile.response_bytes = 4096;
  serve(proxy, make_request(profile, 7));
  const auto second = serve(proxy, make_request(profile, 7));
  EXPECT_EQ(second.origin, Response::Origin::kProxyMemory);
  EXPECT_EQ(proxy.stats().mem_hits, 1u);
}

TEST_F(ProxyServerTest, ObjectsAboveInMemoryLimitGoToDisk) {
  ProxyParams params;
  params.maximum_object_size_in_memory = 1024;  // everything is "too big"
  ProxyServer proxy(sim_, node_, stub_upstream(8192), params);
  const auto profile = cacheable_profile();
  serve(proxy, make_request(profile, 7));
  const auto second = serve(proxy, make_request(profile, 7));
  EXPECT_EQ(second.origin, Response::Origin::kProxyDisk);
}

TEST_F(ProxyServerTest, MinimumObjectSizeBlocksCaching) {
  ProxyParams params;
  params.minimum_object_size = 64 * 1024;  // bigger than any response
  ProxyServer proxy(sim_, node_, stub_upstream(), params);
  const auto profile = cacheable_profile();
  serve(proxy, make_request(profile, 7));
  serve(proxy, make_request(profile, 7));
  EXPECT_EQ(forwards_, 2);  // nothing was cached
  EXPECT_EQ(proxy.stats().misses_forwarded, 2u);
}

TEST_F(ProxyServerTest, MaximumObjectSizeBlocksDiskCaching) {
  ProxyParams params;
  params.maximum_object_size = 1024;  // responses exceed this
  params.maximum_object_size_in_memory = 512;
  ProxyServer proxy(sim_, node_, stub_upstream(8192), params);
  const auto profile = cacheable_profile();
  serve(proxy, make_request(profile, 7));
  serve(proxy, make_request(profile, 7));
  EXPECT_EQ(forwards_, 2);
}

TEST_F(ProxyServerTest, DiskHitPromotesToMemoryWhenAdmitted) {
  ProxyParams params;
  params.maximum_object_size_in_memory = 16 * 1024;
  ProxyServer proxy(sim_, node_, stub_upstream(8192), params);
  const auto profile = cacheable_profile();
  serve(proxy, make_request(profile, 7));   // miss -> cached (mem + disk)
  proxy.reconfigure(params);                // restart clears the mem cache
  serve(proxy, make_request(profile, 7));   // disk hit -> promoted
  const auto third = serve(proxy, make_request(profile, 7));
  EXPECT_EQ(third.origin, Response::Origin::kProxyMemory);
}

TEST_F(ProxyServerTest, ReconfigureKeepsDiskCache) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  const auto profile = cacheable_profile();
  serve(proxy, make_request(profile, 7));
  proxy.reconfigure(ProxyParams{});
  EXPECT_EQ(proxy.memory_cache().object_count(), 0u);
  const auto after = serve(proxy, make_request(profile, 7));
  EXPECT_TRUE(after.ok);
  EXPECT_EQ(forwards_, 1);  // still served locally (from disk)
}

TEST_F(ProxyServerTest, ReconfigureSwapsMemoryFootprint) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  const auto before = node_.memory_used();
  ProxyParams bigger;
  bigger.cache_mem = 64LL * 1024 * 1024;
  proxy.reconfigure(bigger);
  EXPECT_GT(node_.memory_used(), before);
}

TEST_F(ProxyServerTest, InactiveRejects) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  proxy.set_active(false);
  const auto profile = dynamic_profile();
  const auto response = serve(proxy, make_request(profile, 1));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(proxy.stats().errors, 1u);
}

TEST_F(ProxyServerTest, DeactivateReleasesMemory) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  const auto active_memory = node_.memory_used();
  proxy.set_active(false);
  EXPECT_LT(node_.memory_used(), active_memory);
  proxy.set_active(true);
  EXPECT_EQ(node_.memory_used(), active_memory);
}

TEST_F(ProxyServerTest, LoadTracksInflight) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  const auto profile = dynamic_profile();
  proxy.handle(make_request(profile, 1), [](const Response&) {});
  EXPECT_EQ(proxy.load(), 1);
  sim_.run();
  EXPECT_EQ(proxy.load(), 0);
}

TEST_F(ProxyServerTest, UpstreamErrorNotCached) {
  ForwardFn failing = [](const Request&, cluster::Node&, ResponseFn done) {
    done(Response{false, Response::Origin::kError, 0});
  };
  ProxyServer proxy(sim_, node_, std::move(failing), ProxyParams{});
  const auto profile = cacheable_profile();
  const auto response = serve(proxy, make_request(profile, 7));
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(proxy.disk_cache().contains(7));
}

TEST_F(ProxyServerTest, ServedCountsEveryRequest) {
  ProxyServer proxy(sim_, node_, stub_upstream(), ProxyParams{});
  const auto cacheable = cacheable_profile();
  const auto dynamic = dynamic_profile();
  serve(proxy, make_request(cacheable, 1));
  serve(proxy, make_request(dynamic, 2));
  serve(proxy, make_request(cacheable, 1));
  EXPECT_EQ(proxy.stats().served, 3u);
}

}  // namespace
}  // namespace ah::webstack
