#include "webstack/lru_cache.hpp"

#include <gtest/gtest.h>

namespace ah::webstack {
namespace {

TEST(LruCacheTest, MissOnEmpty) {
  LruCache cache(1000);
  EXPECT_EQ(cache.lookup(1), -1);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, HitAfterInsert) {
  LruCache cache(1000);
  EXPECT_TRUE(cache.insert(1, 100));
  EXPECT_EQ(cache.lookup(1), 100);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.used(), 100);
}

TEST(LruCacheTest, ContainsDoesNotPromoteOrCount) {
  LruCache cache(1000);
  cache.insert(1, 10);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // Watermarks 100/100 => plain LRU at exact capacity.
  LruCache cache(300, 100, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.insert(3, 100);
  cache.insert(4, 100);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, LookupPromotes) {
  LruCache cache(300, 100, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.insert(3, 100);
  cache.lookup(1);       // 1 becomes MRU; 2 is now LRU
  cache.insert(4, 100);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCacheTest, WatermarkEvictionDownToLow) {
  // capacity 1000, high 90% (900), low 50% (500).
  LruCache cache(1000, 50, 90);
  for (std::uint64_t k = 0; k < 9; ++k) cache.insert(k, 100);
  EXPECT_EQ(cache.used(), 900);  // at high watermark, no eviction yet
  cache.insert(9, 100);          // crosses high -> evict to low
  EXPECT_LE(cache.used(), 500);
}

TEST(LruCacheTest, OversizedObjectRefused) {
  LruCache cache(1000, 90, 95);
  EXPECT_FALSE(cache.insert(1, 951));  // > high watermark bytes
  EXPECT_TRUE(cache.insert(2, 900));
}

TEST(LruCacheTest, RefreshUpdatesSizeInPlace) {
  LruCache cache(1000, 100, 100);
  cache.insert(1, 100);
  cache.insert(1, 300);
  EXPECT_EQ(cache.used(), 300);
  EXPECT_EQ(cache.object_count(), 1u);
  EXPECT_EQ(cache.lookup(1), 300);
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache cache(1000);
  cache.insert(1, 100);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.used(), 0);
  EXPECT_EQ(cache.lookup(1), -1);
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache cache(1000);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.clear();
  EXPECT_EQ(cache.used(), 0);
  EXPECT_EQ(cache.object_count(), 0u);
}

TEST(LruCacheTest, ShrinkCapacityEvicts) {
  LruCache cache(1000, 100, 100);
  for (std::uint64_t k = 0; k < 10; ++k) cache.insert(k, 100);
  cache.set_capacity(300);
  EXPECT_LE(cache.used(), 300);
  EXPECT_TRUE(cache.contains(9));  // MRU survives
}

TEST(LruCacheTest, GrowCapacityKeepsContents) {
  LruCache cache(200, 100, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.set_capacity(1000);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LruCacheTest, TightenWatermarksEvicts) {
  LruCache cache(1000, 90, 95);
  for (std::uint64_t k = 0; k < 9; ++k) cache.insert(k, 100);
  cache.set_watermarks(30, 50);
  EXPECT_LE(cache.used(), 300);
}

TEST(LruCacheTest, HitRatio) {
  LruCache cache(1000);
  cache.insert(1, 10);
  cache.lookup(1);
  cache.lookup(1);
  cache.lookup(2);
  EXPECT_NEAR(cache.hit_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(LruCacheTest, HitRatioZeroWithoutLookups) {
  LruCache cache(1000);
  EXPECT_EQ(cache.hit_ratio(), 0.0);
}

TEST(LruCacheTest, FreshEntryHitsBeforeExpiry) {
  LruCache cache(1000);
  cache.insert(1, 100, common::SimTime::seconds(10.0));
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(5.0)), 100);
  EXPECT_EQ(cache.expirations(), 0u);
}

TEST(LruCacheTest, ExpiredEntryMissesAndIsEvicted) {
  LruCache cache(1000);
  cache.insert(1, 100, common::SimTime::seconds(10.0));
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(10.0)), -1);  // at expiry
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.used(), 0);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCacheTest, ReinsertRefreshesExpiry) {
  LruCache cache(1000);
  cache.insert(1, 100, common::SimTime::seconds(10.0));
  cache.insert(1, 100, common::SimTime::seconds(30.0));
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(20.0)), 100);
}

TEST(LruCacheTest, DefaultExpiryIsNever) {
  LruCache cache(1000);
  cache.insert(1, 100);
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(1e9)), 100);
}

TEST(LruCacheTest, ZeroSizeObjectsAllowed) {
  LruCache cache(100);
  EXPECT_TRUE(cache.insert(1, 0));
  EXPECT_EQ(cache.lookup(1), 0);
}

// Regression: contains() must apply the same freshness rule as lookup()
// would at the same time — an expired entry reports absent — but without
// evicting it or touching the counters (a peek must not mutate).
TEST(LruCacheTest, ContainsReportsExpiredAsAbsentWithoutEvicting) {
  LruCache cache(1000);
  cache.insert(1, 100, common::SimTime::seconds(10.0));
  EXPECT_TRUE(cache.contains(1, common::SimTime::seconds(9.0)));
  EXPECT_FALSE(cache.contains(1, common::SimTime::seconds(10.0)));  // at expiry
  EXPECT_FALSE(cache.contains(1, common::SimTime::seconds(11.0)));
  // The peek left the entry in place: counters untouched, bytes still held.
  EXPECT_EQ(cache.expirations(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.used(), 100);
  EXPECT_EQ(cache.object_count(), 1u);
}

// -- slab/index edge cases ---------------------------------------------------

// Shrinking capacity mid-stream (proxy restart with a smaller cache_mem)
// must evict from the LRU end and keep the index consistent for the
// survivors and for later inserts.
TEST(LruCacheTest, SetCapacityShrinkMidStream) {
  LruCache cache(100'000, 90, 95);
  for (std::uint64_t k = 0; k < 200; ++k) cache.insert(k, 400);
  cache.set_capacity(10'000);  // high watermark now 9'500
  EXPECT_LE(cache.used(), 9'500);
  // Most-recent entries survive and stay reachable.
  EXPECT_TRUE(cache.contains(199));
  EXPECT_FALSE(cache.contains(0));
  // The cache keeps working at the new size.
  for (std::uint64_t k = 200; k < 400; ++k) cache.insert(k, 400);
  EXPECT_LE(cache.used(), 9'500);
  EXPECT_TRUE(cache.contains(399));
}

// A refresh that grows an entry past the high watermark must trigger the
// same eviction pass a fresh insert would.
TEST(LruCacheTest, RefreshGrowingPastHighWatermarkEvicts) {
  LruCache cache(1000, 50, 90);
  cache.insert(1, 300);
  cache.insert(2, 300);
  cache.insert(3, 200);
  EXPECT_EQ(cache.used(), 800);  // under high watermark (900)
  cache.insert(3, 400);          // refresh: 800 -> 1000 > 900 -> evict to 500
  EXPECT_LE(cache.used(), 500);
  EXPECT_TRUE(cache.contains(3));   // refreshed entry is MRU, survives
  EXPECT_FALSE(cache.contains(1));  // LRU entry evicted
}

// Tightening watermarks also tightens the max-object-size refusal rule.
TEST(LruCacheTest, InsertLargerThanHighWatermarkAfterSetWatermarks) {
  LruCache cache(1000, 90, 95);
  EXPECT_TRUE(cache.insert(1, 900));  // fits under 950
  cache.set_watermarks(30, 50);
  EXPECT_FALSE(cache.insert(2, 600));  // > 500, refused now
  EXPECT_TRUE(cache.insert(3, 500));
}

// Heavy erase/insert churn recycles slab slots; stale index entries or slot
// aliasing would surface as wrong lookups here.  The key range forces the
// bucket array through several growth rehashes while erases interleave.
TEST(LruCacheTest, SlotReuseAfterChurnKeepsIndexConsistent) {
  LruCache cache(1'000'000, 100, 100);
  constexpr std::uint64_t kRounds = 50;
  constexpr std::uint64_t kBatch = 64;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (std::uint64_t k = 0; k < kBatch; ++k) {
      cache.insert(r * kBatch + k, 1 + (k % 7));
    }
    // Erase every other key from this batch — frees slots mid-table.
    for (std::uint64_t k = 0; k < kBatch; k += 2) {
      EXPECT_TRUE(cache.erase(r * kBatch + k));
    }
  }
  // Exactly the odd keys of every round remain, each with its own size.
  EXPECT_EQ(cache.object_count(), kRounds * kBatch / 2);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (std::uint64_t k = 0; k < kBatch; ++k) {
      const std::uint64_t key = r * kBatch + k;
      if (k % 2 == 0) {
        EXPECT_FALSE(cache.contains(key)) << "ghost key " << key;
      } else {
        EXPECT_EQ(cache.lookup(key), static_cast<common::Bytes>(1 + (k % 7)))
            << "key " << key;
      }
    }
  }
}

// Regression: an insert that lands exactly on a growth rehash must not file
// the new entry twice (the rehash walk already re-files the whole recency
// list, new entry included).  A duplicate bucket survives erase and later
// ghost-hits whatever recycles the slot.
TEST(LruCacheTest, InsertDuringRehashDoesNotDuplicateIndexEntry) {
  LruCache cache(1'000'000, 100, 100);
  // Fill through several doublings of the 64-bucket initial table.
  for (std::uint64_t k = 0; k < 1000; ++k) cache.insert(k, 1);
  // Every key must be erasable exactly once — a duplicate would make the
  // second erase of the same key succeed via the stale bucket.
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(cache.erase(k)) << "key " << k;
    EXPECT_FALSE(cache.erase(k)) << "duplicate index entry for key " << k;
  }
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_EQ(cache.used(), 0);
}

// Property-style sweep: the byte budget invariant holds across watermark
// combinations and access patterns.
class LruWatermarkSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LruWatermarkSweep, UsedNeverExceedsHighWatermarkAfterInsert) {
  const auto [low, high] = GetParam();
  LruCache cache(10'000, low, high);
  for (std::uint64_t k = 0; k < 500; ++k) {
    cache.insert(k, 37 + (k * 13) % 400);
    EXPECT_LE(cache.used(), cache.capacity() * high / 100);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Watermarks, LruWatermarkSweep,
    ::testing::Values(std::pair{50, 60}, std::pair{90, 95}, std::pair{30, 90},
                      std::pair{95, 99}, std::pair{100, 100}));

}  // namespace
}  // namespace ah::webstack
