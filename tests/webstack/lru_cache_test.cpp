#include "webstack/lru_cache.hpp"

#include <gtest/gtest.h>

namespace ah::webstack {
namespace {

TEST(LruCacheTest, MissOnEmpty) {
  LruCache cache(1000);
  EXPECT_EQ(cache.lookup(1), -1);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, HitAfterInsert) {
  LruCache cache(1000);
  EXPECT_TRUE(cache.insert(1, 100));
  EXPECT_EQ(cache.lookup(1), 100);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.used(), 100);
}

TEST(LruCacheTest, ContainsDoesNotPromoteOrCount) {
  LruCache cache(1000);
  cache.insert(1, 10);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // Watermarks 100/100 => plain LRU at exact capacity.
  LruCache cache(300, 100, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.insert(3, 100);
  cache.insert(4, 100);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, LookupPromotes) {
  LruCache cache(300, 100, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.insert(3, 100);
  cache.lookup(1);       // 1 becomes MRU; 2 is now LRU
  cache.insert(4, 100);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCacheTest, WatermarkEvictionDownToLow) {
  // capacity 1000, high 90% (900), low 50% (500).
  LruCache cache(1000, 50, 90);
  for (std::uint64_t k = 0; k < 9; ++k) cache.insert(k, 100);
  EXPECT_EQ(cache.used(), 900);  // at high watermark, no eviction yet
  cache.insert(9, 100);          // crosses high -> evict to low
  EXPECT_LE(cache.used(), 500);
}

TEST(LruCacheTest, OversizedObjectRefused) {
  LruCache cache(1000, 90, 95);
  EXPECT_FALSE(cache.insert(1, 951));  // > high watermark bytes
  EXPECT_TRUE(cache.insert(2, 900));
}

TEST(LruCacheTest, RefreshUpdatesSizeInPlace) {
  LruCache cache(1000, 100, 100);
  cache.insert(1, 100);
  cache.insert(1, 300);
  EXPECT_EQ(cache.used(), 300);
  EXPECT_EQ(cache.object_count(), 1u);
  EXPECT_EQ(cache.lookup(1), 300);
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache cache(1000);
  cache.insert(1, 100);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.used(), 0);
  EXPECT_EQ(cache.lookup(1), -1);
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache cache(1000);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.clear();
  EXPECT_EQ(cache.used(), 0);
  EXPECT_EQ(cache.object_count(), 0u);
}

TEST(LruCacheTest, ShrinkCapacityEvicts) {
  LruCache cache(1000, 100, 100);
  for (std::uint64_t k = 0; k < 10; ++k) cache.insert(k, 100);
  cache.set_capacity(300);
  EXPECT_LE(cache.used(), 300);
  EXPECT_TRUE(cache.contains(9));  // MRU survives
}

TEST(LruCacheTest, GrowCapacityKeepsContents) {
  LruCache cache(200, 100, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.set_capacity(1000);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LruCacheTest, TightenWatermarksEvicts) {
  LruCache cache(1000, 90, 95);
  for (std::uint64_t k = 0; k < 9; ++k) cache.insert(k, 100);
  cache.set_watermarks(30, 50);
  EXPECT_LE(cache.used(), 300);
}

TEST(LruCacheTest, HitRatio) {
  LruCache cache(1000);
  cache.insert(1, 10);
  cache.lookup(1);
  cache.lookup(1);
  cache.lookup(2);
  EXPECT_NEAR(cache.hit_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(LruCacheTest, HitRatioZeroWithoutLookups) {
  LruCache cache(1000);
  EXPECT_EQ(cache.hit_ratio(), 0.0);
}

TEST(LruCacheTest, FreshEntryHitsBeforeExpiry) {
  LruCache cache(1000);
  cache.insert(1, 100, common::SimTime::seconds(10.0));
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(5.0)), 100);
  EXPECT_EQ(cache.expirations(), 0u);
}

TEST(LruCacheTest, ExpiredEntryMissesAndIsEvicted) {
  LruCache cache(1000);
  cache.insert(1, 100, common::SimTime::seconds(10.0));
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(10.0)), -1);  // at expiry
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.used(), 0);
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruCacheTest, ReinsertRefreshesExpiry) {
  LruCache cache(1000);
  cache.insert(1, 100, common::SimTime::seconds(10.0));
  cache.insert(1, 100, common::SimTime::seconds(30.0));
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(20.0)), 100);
}

TEST(LruCacheTest, DefaultExpiryIsNever) {
  LruCache cache(1000);
  cache.insert(1, 100);
  EXPECT_EQ(cache.lookup(1, common::SimTime::seconds(1e9)), 100);
}

TEST(LruCacheTest, ZeroSizeObjectsAllowed) {
  LruCache cache(100);
  EXPECT_TRUE(cache.insert(1, 0));
  EXPECT_EQ(cache.lookup(1), 0);
}

// Property-style sweep: the byte budget invariant holds across watermark
// combinations and access patterns.
class LruWatermarkSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LruWatermarkSweep, UsedNeverExceedsHighWatermarkAfterInsert) {
  const auto [low, high] = GetParam();
  LruCache cache(10'000, low, high);
  for (std::uint64_t k = 0; k < 500; ++k) {
    cache.insert(k, 37 + (k * 13) % 400);
    EXPECT_LE(cache.used(), cache.capacity() * high / 100);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Watermarks, LruWatermarkSweep,
    ::testing::Values(std::pair{50, 60}, std::pair{90, 95}, std::pair{30, 90},
                      std::pair{95, 99}, std::pair{100, 100}));

}  // namespace
}  // namespace ah::webstack
