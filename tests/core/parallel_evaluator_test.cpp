#include "core/parallel_evaluator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/tuning_driver.hpp"
#include "webstack/params.hpp"

namespace ah::core {
namespace {

// Small but non-trivial protocol so determinism failures have room to show
// up (cache warm-up, queueing) while the suite stays fast under TSAN.
Experiment::Config small_experiment() {
  Experiment::Config config;
  config.browsers = 60;
  config.iteration.warmup = common::SimTime::seconds(4.0);
  config.iteration.measure = common::SimTime::seconds(10.0);
  config.iteration.cooldown = common::SimTime::seconds(1.0);
  config.seed = 7;
  return config;
}

// Deterministic in-bounds perturbations of the default configuration.
std::vector<harmony::PointI> candidate_batch(std::size_t n) {
  const auto& catalogue = webstack::parameter_catalogue();
  const harmony::PointI defaults = webstack::default_values();
  std::vector<harmony::PointI> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    harmony::PointI point = defaults;
    const std::size_t d = i % point.size();
    const auto& spec = catalogue[d];
    const std::int64_t step =
        std::max<std::int64_t>(1, (spec.max_value - spec.min_value) / 8);
    point[d] = std::clamp(spec.default_value +
                              static_cast<std::int64_t>(i + 1) * step,
                          spec.min_value, spec.max_value);
    batch.push_back(std::move(point));
  }
  return batch;
}

ParallelEvaluator::ApplyFn apply_all() {
  return [](SystemModel& system, const harmony::PointI& values) {
    system.apply_values_all(values);
  };
}

// Two batches on the same evaluator, so replica state evolution is part of
// what must reproduce.
std::vector<double> evaluate_series(std::size_t threads) {
  common::ThreadPool pool(threads);
  ParallelEvaluator::Options options;
  options.experiment = small_experiment();
  options.replicas = 3;
  ParallelEvaluator evaluator(pool, options);
  const auto batch = candidate_batch(7);
  std::vector<double> wips;
  for (int round = 0; round < 2; ++round) {
    for (const auto& result : evaluator.evaluate(batch, apply_all())) {
      wips.push_back(result.wips);
    }
  }
  return wips;
}

TEST(ParallelEvaluatorTest, WipsBitIdenticalAcrossThreadCounts) {
  const auto one = evaluate_series(1);
  const auto two = evaluate_series(2);
  const auto hardware = evaluate_series(0);  // hardware_concurrency
  ASSERT_EQ(one.size(), 14u);
  // Bit-identical, not approximately equal: scheduling must not leak into
  // the measurements at all.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, hardware);
  for (const double w : one) EXPECT_GT(w, 0.0);
}

TEST(ParallelEvaluatorTest, ResultsComeBackInCandidateOrder) {
  common::ThreadPool pool(2);
  ParallelEvaluator::Options options;
  options.experiment = small_experiment();
  options.replicas = 2;
  ParallelEvaluator evaluator(pool, options);
  const auto batch = candidate_batch(5);
  const auto results = evaluator.evaluate(batch, apply_all());
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(evaluator.evaluations(), 5u);
  for (const auto& result : results) {
    EXPECT_GT(result.wips, 0.0);
    EXPECT_EQ(result.line_wips.size(), 1u);
  }
}

TEST(ParallelEvaluatorTest, ReplicaSeedsAreDistinctAndDeterministic) {
  EXPECT_NE(ParallelEvaluator::replica_seed(2004, 0),
            ParallelEvaluator::replica_seed(2004, 1));
  EXPECT_EQ(ParallelEvaluator::replica_seed(2004, 3),
            ParallelEvaluator::replica_seed(2004, 3));
  // Salted away from the base seed itself (which seeds the live system).
  EXPECT_NE(ParallelEvaluator::replica_seed(2004, 0), 2004u);
}

TEST(ParallelEvaluatorTest, RejectsZeroReplicas) {
  common::ThreadPool pool(1);
  ParallelEvaluator::Options options;
  options.replicas = 0;
  EXPECT_THROW(ParallelEvaluator(pool, options), std::invalid_argument);
}

TuningResult run_duplication(std::size_t threads) {
  sim::Simulator sim;
  SystemModel::Config topology;  // one 1/1/1 work line
  SystemModel system(sim, topology);
  Experiment experiment(system, small_experiment());
  TuningDriver::Options options;
  options.method = TuningMethod::kDuplication;
  options.threads = threads;
  options.replicas = 4;
  TuningDriver driver(system, experiment, options);
  return driver.run(8, /*validation_iterations=*/1);
}

TEST(TuningDriverParallelTest, DuplicationIdenticalAcrossThreadCounts) {
  const auto two = run_duplication(2);
  const auto four = run_duplication(4);
  const auto hardware = run_duplication(0);
  ASSERT_EQ(two.wips_series.size(), 8u);
  EXPECT_EQ(two.wips_series, four.wips_series);
  EXPECT_EQ(two.wips_series, hardware.wips_series);
  EXPECT_EQ(two.best_configuration, four.best_configuration);
  EXPECT_EQ(two.best_configuration, hardware.best_configuration);
  EXPECT_EQ(two.validated_wips, four.validated_wips);
  for (const double w : two.wips_series) EXPECT_GT(w, 0.0);
}

TuningResult run_partitioning(std::size_t threads) {
  sim::Simulator sim;
  SystemModel::Config topology;
  topology.lines = {SystemModel::LineSpec{1, 1, 1},
                    SystemModel::LineSpec{1, 1, 1}};
  SystemModel system(sim, topology);
  Experiment::Config experiment_config = small_experiment();
  experiment_config.browsers = 120;  // 60 per line
  Experiment experiment(system, experiment_config);
  TuningDriver::Options options;
  options.method = TuningMethod::kPartitioning;
  options.threads = threads;
  options.replicas = 3;
  TuningDriver driver(system, experiment, options);
  return driver.run(6, /*validation_iterations=*/0);
}

TEST(TuningDriverParallelTest, PartitioningIdenticalAcrossThreadCounts) {
  const auto two = run_partitioning(2);
  const auto three = run_partitioning(3);
  ASSERT_EQ(two.wips_series.size(), 6u);
  EXPECT_EQ(two.wips_series, three.wips_series);
  EXPECT_EQ(two.best_configuration, three.best_configuration);
  // Concatenated per-line bests: 2 lines x 23 parameters.
  EXPECT_EQ(two.best_configuration.size(),
            2 * webstack::parameter_catalogue().size());
  for (const double w : two.wips_series) EXPECT_GT(w, 0.0);
}

TEST(TuningDriverParallelTest, DefaultMethodRunsParallel) {
  sim::Simulator sim;
  SystemModel::Config topology;
  SystemModel system(sim, topology);
  Experiment experiment(system, small_experiment());
  TuningDriver::Options options;
  options.method = TuningMethod::kDefault;
  options.threads = 2;
  options.replicas = 2;
  TuningDriver driver(system, experiment, options);
  const auto result = driver.run(4, /*validation_iterations=*/0);
  ASSERT_EQ(result.wips_series.size(), 4u);
  for (const double w : result.wips_series) EXPECT_GT(w, 0.0);
  // Concatenated per-node slices over a 1/1/1 line: 7 + 7 + 9 dimensions.
  EXPECT_EQ(result.best_configuration.size(), 23u);
}

TEST(ApplyMethodValuesTest, RejectsLayoutMismatch) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  EXPECT_THROW(apply_method_values(system, TuningMethod::kDuplication,
                                   harmony::PointI(5, 1)),
               std::invalid_argument);
  EXPECT_THROW(apply_method_values(system, TuningMethod::kDefault,
                                   harmony::PointI(7, 1)),
               std::invalid_argument);
  EXPECT_THROW(apply_method_values(system, TuningMethod::kPartitioning,
                                   harmony::PointI(5, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ah::core
