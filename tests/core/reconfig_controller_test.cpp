#include "core/reconfig_controller.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace ah::core {
namespace {

using cluster::TierKind;
using common::SimTime;

TEST(ReconfigControllerTest, NoMoveOnIdleSystem) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{2, 2, 1}};
  SystemModel system(sim, config);
  ReconfigController controller(system);
  sim.run_until(SimTime::seconds(60.0));  // monitor samples, no load
  EXPECT_FALSE(controller.check().has_value());
  EXPECT_TRUE(controller.moves().empty());
}

TEST(ReconfigControllerTest, MovesIdleProxyToHotAppTier) {
  sim::Simulator sim;
  SystemModel::Config config;
  // 4 proxies / 2 apps, as in the paper's Figure 7(a) starting layout.
  // The database tier is provisioned out of the way (the paper's Fig 7
  // imbalance is between the proxy and application tiers).
  config.lines = {SystemModel::LineSpec{4, 2, 3}};
  SystemModel system(sim, config);

  Experiment::Config experiment_config;
  experiment_config.browsers = 1000;
  experiment_config.workload = tpcw::WorkloadKind::kOrdering;
  experiment_config.iteration.warmup = SimTime::seconds(5.0);
  experiment_config.iteration.measure = SimTime::seconds(30.0);
  experiment_config.iteration.cooldown = SimTime::seconds(1.0);
  Experiment experiment(system, experiment_config);
  for (int i = 0; i < 3; ++i) experiment.run_iteration();

  ReconfigController controller(system);
  const auto decision = controller.check();
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->from_tier, static_cast<int>(TierKind::kProxy));
  EXPECT_EQ(decision->to_tier, static_cast<int>(TierKind::kApp));
  EXPECT_EQ(controller.moves().size(), 1u);

  // Let the move complete and confirm membership changed.
  experiment.run_iteration();
  EXPECT_EQ(system.cluster().tier(TierKind::kProxy).size(), 3u);
  EXPECT_EQ(system.cluster().tier(TierKind::kApp).size(), 3u);
}

TEST(ReconfigControllerTest, ThroughputImprovesAfterRebalance) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{4, 2, 3}};
  SystemModel system(sim, config);
  // Parameter tuning runs alongside reconfiguration (paper §IV); with the
  // *default* DB parameters, relieving the app tier would simply flood the
  // binlog-spill bottleneck downstream and mask the rebalancing gain.
  {
    auto values = webstack::default_values();
    values[webstack::catalogue_index("binlog_cache_size")] = 284672;
    values[webstack::catalogue_index("table_cache")] = 900;
    values[webstack::catalogue_index("thread_con")] = 80;
    values[webstack::catalogue_index("max_connections")] = 700;
    values[webstack::catalogue_index("maxProcessors")] = 128;
    values[webstack::catalogue_index("acceptCount")] = 150;
    values[webstack::catalogue_index("AJPmaxProcessors")] = 160;
    values[webstack::catalogue_index("AJPacceptCount")] = 300;
    system.apply_values_all(values);
  }

  Experiment::Config experiment_config;
  experiment_config.browsers = 2600;  // well past the 2-node app tier's knee
  experiment_config.workload = tpcw::WorkloadKind::kOrdering;
  experiment_config.iteration.warmup = SimTime::seconds(5.0);
  experiment_config.iteration.measure = SimTime::seconds(30.0);
  experiment_config.iteration.cooldown = SimTime::seconds(1.0);
  Experiment experiment(system, experiment_config);
  for (int i = 0; i < 2; ++i) experiment.run_iteration();
  const double before = experiment.run_iteration().wips;

  // Deployment thresholds (Table 5 LT_ij): proxies relaying the full
  // request stream idle at ~40%, not at the conservative defaults.
  harmony::ReconfigOptions options = SystemModel::default_reconfig_options();
  options.resources[SystemModel::kCpu].low_threshold = 0.60;
  options.resources[SystemModel::kDisk].low_threshold = 0.60;
  options.resources[SystemModel::kNic].low_threshold = 0.50;
  ReconfigController controller(system, options);
  const auto decision = controller.check();
  ASSERT_TRUE(decision.has_value());
  experiment.run_iteration();  // transition
  experiment.run_iteration();
  const double after = experiment.run_iteration().wips;
  EXPECT_GT(after, before * 1.05);
}

TEST(ReconfigControllerTest, RepeatedChecksEventuallyStop) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{4, 2, 2}};
  SystemModel system(sim, config);

  Experiment::Config experiment_config;
  experiment_config.browsers = 1000;
  experiment_config.workload = tpcw::WorkloadKind::kOrdering;
  experiment_config.iteration.warmup = SimTime::seconds(5.0);
  experiment_config.iteration.measure = SimTime::seconds(20.0);
  experiment_config.iteration.cooldown = SimTime::seconds(1.0);
  Experiment experiment(system, experiment_config);

  ReconfigController controller(system);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 2; ++i) experiment.run_iteration();
    controller.check();
  }
  // The balancer must not oscillate forever: proxies never drop below the
  // tier-survival minimum and the app tier never absorbs every node.
  EXPECT_GE(system.cluster().tier(TierKind::kProxy).size(), 1u);
  EXPECT_GE(system.cluster().tier(TierKind::kApp).size(), 2u);
  EXPECT_LE(controller.moves().size(), 4u);
}

}  // namespace
}  // namespace ah::core
