#include "core/system_model.hpp"

#include <gtest/gtest.h>

namespace ah::core {
namespace {

using cluster::TierKind;
using common::SimTime;

SystemModel::Config single_line(int proxies = 1, int apps = 1, int dbs = 1) {
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{proxies, apps, dbs}};
  return config;
}

TEST(SystemModelTest, BuildsNodesPerLineSpec) {
  sim::Simulator sim;
  SystemModel system(sim, single_line(2, 3, 1));
  EXPECT_EQ(system.cluster().node_count(), 6u);
  EXPECT_EQ(system.cluster().tier(TierKind::kProxy).size(), 2u);
  EXPECT_EQ(system.cluster().tier(TierKind::kApp).size(), 3u);
  EXPECT_EQ(system.cluster().tier(TierKind::kDb).size(), 1u);
  EXPECT_EQ(system.line_count(), 1u);
  EXPECT_EQ(system.line_nodes(0).size(), 6u);
}

TEST(SystemModelTest, MultiLineTopology) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{1, 1, 1},
                  SystemModel::LineSpec{1, 1, 1}};
  SystemModel system(sim, config);
  EXPECT_EQ(system.line_count(), 2u);
  EXPECT_EQ(system.cluster().node_count(), 6u);
  EXPECT_EQ(system.line_of(0), 0u);
  EXPECT_EQ(system.line_of(3), 1u);
}

TEST(SystemModelTest, RejectsEmptyConfigs) {
  sim::Simulator sim;
  SystemModel::Config none;
  none.lines.clear();
  EXPECT_THROW(SystemModel(sim, none), std::invalid_argument);
  SystemModel::Config zero;
  zero.lines = {SystemModel::LineSpec{0, 1, 1}};
  EXPECT_THROW(SystemModel(sim, zero), std::invalid_argument);
}

TEST(SystemModelTest, OnlyMatchingRoleActive) {
  sim::Simulator sim;
  SystemModel system(sim, single_line());
  const auto proxy_id = system.cluster().tier(TierKind::kProxy).members()[0];
  const auto app_id = system.cluster().tier(TierKind::kApp).members()[0];
  EXPECT_TRUE(system.proxy_on(proxy_id).active());
  EXPECT_FALSE(system.app_on(proxy_id).active());
  EXPECT_FALSE(system.db_on(proxy_id).active());
  EXPECT_TRUE(system.app_on(app_id).active());
  EXPECT_FALSE(system.proxy_on(app_id).active());
}

TEST(SystemModelTest, ApplyValuesReachesTierServers) {
  sim::Simulator sim;
  SystemModel system(sim, single_line());
  auto values = webstack::default_values();
  values[webstack::catalogue_index("maxProcessors")] = 321;
  values[webstack::catalogue_index("thread_con")] = 77;
  values[webstack::catalogue_index("cache_mem")] = 64;
  system.apply_values_all(values);
  const auto app_id = system.cluster().tier(TierKind::kApp).members()[0];
  const auto db_id = system.cluster().tier(TierKind::kDb).members()[0];
  const auto proxy_id = system.cluster().tier(TierKind::kProxy).members()[0];
  EXPECT_EQ(system.app_on(app_id).params().max_processors, 321);
  EXPECT_EQ(system.db_on(db_id).params().thread_concurrency, 77);
  EXPECT_EQ(system.proxy_on(proxy_id).params().cache_mem, 64LL * 1024 * 1024);
}

TEST(SystemModelTest, ApplyValuesLineIsScoped) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{1, 1, 1},
                  SystemModel::LineSpec{1, 1, 1}};
  SystemModel system(sim, config);
  auto values = webstack::default_values();
  values[webstack::catalogue_index("maxProcessors")] = 500;
  system.apply_values_line(1, values);
  const auto line0_app = system.line_nodes(0)[1];
  const auto line1_app = system.line_nodes(1)[1];
  EXPECT_EQ(system.app_on(line0_app).params().max_processors, 20);
  EXPECT_EQ(system.app_on(line1_app).params().max_processors, 500);
}

TEST(SystemModelTest, ReadingsCoverAllNodes) {
  sim::Simulator sim;
  SystemModel system(sim, single_line(2, 1, 1));
  const auto readings = system.readings();
  ASSERT_EQ(readings.size(), 4u);
  for (const auto& r : readings) {
    EXPECT_EQ(r.utilization.size(), 4u);  // cpu, disk, nic, memory
  }
}

TEST(SystemModelTest, MoveNodeImmediateSwitchesRole) {
  sim::Simulator sim;
  SystemModel system(sim, single_line(2, 1, 1));
  const auto donor = system.cluster().tier(TierKind::kProxy).members()[0];
  system.move_node(donor, TierKind::kApp, /*immediate=*/true,
                   SimTime::seconds(5.0));
  EXPECT_TRUE(system.move_in_progress(donor));
  sim.run_until(sim.now() + SimTime::seconds(10.0));
  EXPECT_FALSE(system.move_in_progress(donor));
  EXPECT_EQ(system.cluster().tier_of(donor), TierKind::kApp);
  EXPECT_TRUE(system.app_on(donor).active());
  EXPECT_FALSE(system.proxy_on(donor).active());
}

TEST(SystemModelTest, MoveLastTierMemberThrows) {
  sim::Simulator sim;
  SystemModel system(sim, single_line());
  const auto only_proxy = system.cluster().tier(TierKind::kProxy).members()[0];
  EXPECT_THROW(system.move_node(only_proxy, TierKind::kApp, true,
                                SimTime::seconds(1.0)),
               std::logic_error);
}

TEST(SystemModelTest, DoubleMoveThrows) {
  sim::Simulator sim;
  SystemModel system(sim, single_line(2, 1, 1));
  const auto donor = system.cluster().tier(TierKind::kProxy).members()[0];
  system.move_node(donor, TierKind::kApp, true, SimTime::seconds(5.0));
  EXPECT_THROW(
      system.move_node(donor, TierKind::kDb, true, SimTime::seconds(5.0)),
      std::logic_error);
}

TEST(SystemModelTest, MovingNodeExcludedFromReadings) {
  sim::Simulator sim;
  SystemModel system(sim, single_line(2, 1, 1));
  const auto donor = system.cluster().tier(TierKind::kProxy).members()[0];
  system.move_node(donor, TierKind::kApp, true, SimTime::seconds(5.0));
  const auto readings = system.readings();
  EXPECT_EQ(readings.size(), 3u);
  for (const auto& r : readings) EXPECT_NE(r.node_id, donor);
}

TEST(SystemModelTest, DefaultReconfigOptionsSane) {
  const auto options = SystemModel::default_reconfig_options();
  ASSERT_EQ(options.resources.size(), 4u);
  for (const auto& r : options.resources) {
    EXPECT_LE(r.low_threshold, r.high_threshold);
    EXPECT_GT(r.urgency_weight, 0.0);
  }
  EXPECT_GT(options.config_cost_seconds, 0.0);
}

}  // namespace
}  // namespace ah::core
