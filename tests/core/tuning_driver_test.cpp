#include "core/tuning_driver.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace ah::core {
namespace {

using common::SimTime;

Experiment::Config fast_config(int browsers = 150) {
  Experiment::Config config;
  config.browsers = browsers;
  config.iteration.warmup = SimTime::seconds(4.0);
  config.iteration.measure = SimTime::seconds(15.0);
  config.iteration.cooldown = SimTime::seconds(1.0);
  return config;
}

TEST(TuningDriverTest, MethodNames) {
  EXPECT_EQ(tuning_method_name(TuningMethod::kNone), "None (No Tuning)");
  EXPECT_EQ(tuning_method_name(TuningMethod::kDefault), "Default method");
  EXPECT_EQ(tuning_method_name(TuningMethod::kDuplication),
            "Parameter duplication");
  EXPECT_EQ(tuning_method_name(TuningMethod::kPartitioning),
            "Parameter partitioning");
}

TEST(TuningDriverTest, NoneMethodRunsWithoutSessions) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment, {.method = TuningMethod::kNone});
  const auto result = driver.run(3);
  EXPECT_EQ(result.wips_series.size(), 3u);
  EXPECT_EQ(result.best_configuration, webstack::default_values());
  EXPECT_EQ(driver.server().session_count(), 0u);
}

TEST(TuningDriverTest, DuplicationSessionHas23Dimensions) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  EXPECT_EQ(driver.server().session_count(), 1u);
  EXPECT_EQ(driver.server().session(0).space().dimensions(), 23u);
}

TEST(TuningDriverTest, DefaultMethodSpansAllNodes) {
  sim::Simulator sim;
  SystemModel::Config system_config;
  system_config.lines = {SystemModel::LineSpec{2, 2, 1}};
  SystemModel system(sim, system_config);
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment, {.method = TuningMethod::kDefault});
  // 2 proxies x 7 + 2 apps x 7 + 1 db x 9 = 37 dimensions.
  EXPECT_EQ(driver.server().session(0).space().dimensions(), 37u);
}

TEST(TuningDriverTest, PartitioningOneSessionPerLine) {
  sim::Simulator sim;
  SystemModel::Config system_config;
  system_config.lines = {SystemModel::LineSpec{1, 1, 1},
                         SystemModel::LineSpec{1, 1, 1},
                         SystemModel::LineSpec{1, 1, 1}};
  SystemModel system(sim, system_config);
  Experiment experiment(system, fast_config(240));
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kPartitioning});
  EXPECT_EQ(driver.server().session_count(), 3u);
}

TEST(TuningDriverTest, RunRecordsSeriesAndEvaluations) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  const auto result = driver.run(5, /*validation_iterations=*/0);
  EXPECT_EQ(result.wips_series.size(), 5u);
  EXPECT_EQ(driver.server().evaluations(0), 5u);
  for (const double wips : result.wips_series) EXPECT_GT(wips, 0.0);
  EXPECT_GT(result.best_wips, 0.0);
  EXPECT_EQ(result.best_configuration.size(), 23u);
}

TEST(TuningDriverTest, AppliedConfigurationsReachServers) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  driver.run(2, /*validation_iterations=*/0);
  // After two iterations, the second proposed configuration was applied;
  // it differs from defaults in exactly one dimension (init simplex).
  const auto app_id = system.cluster().tier(cluster::TierKind::kApp).members()[0];
  const auto proxy_id =
      system.cluster().tier(cluster::TierKind::kProxy).members()[0];
  const auto current = webstack::to_values(
      system.proxy_on(proxy_id).params(), system.app_on(app_id).params(),
      system
          .db_on(system.cluster().tier(cluster::TierKind::kDb).members()[0])
          .params());
  int diffs = 0;
  const auto defaults = webstack::default_values();
  for (std::size_t i = 0; i < defaults.size(); ++i) {
    if (current[i] != defaults[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
}

TEST(TuningDriverTest, PartitioningResultLayoutConcatenates) {
  sim::Simulator sim;
  SystemModel::Config system_config;
  system_config.lines = {SystemModel::LineSpec{1, 1, 1},
                         SystemModel::LineSpec{1, 1, 1}};
  SystemModel system(sim, system_config);
  Experiment experiment(system, fast_config(200));
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kPartitioning});
  const auto result = driver.run(3);
  EXPECT_EQ(result.best_configuration.size(), 46u);
}

TEST(TuningDriverTest, ApplyConfigurationValidatesLayout) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  harmony::PointI wrong(10, 1);
  EXPECT_THROW(driver.apply_configuration(wrong), std::invalid_argument);
}

TEST(TuningDriverTest, ApplyConfigurationRestoresBest) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  const auto result = driver.run(4);
  driver.apply_configuration(result.best_configuration);
  const auto proxy_id =
      system.cluster().tier(cluster::TierKind::kProxy).members()[0];
  EXPECT_EQ(system.proxy_on(proxy_id).params().cache_mem / (1024 * 1024),
            result.best_configuration[0]);
}

TEST(TuningDriverTest, ValidationPassSelectsHonestCandidate) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config(400));
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  const auto result = driver.run(12, /*validation_iterations=*/2);
  // The validated figure comes from real re-measured iterations, so it is
  // positive and of the same magnitude as the series.
  EXPECT_GT(result.validated_wips, 0.0);
  EXPECT_LT(result.validated_wips, 3.0 * result.best_wips);
  // The chosen configuration must be one that was actually proposed.
  EXPECT_EQ(result.best_configuration.size(), 23u);
  const auto& history = driver.server().session(0).history();
  const bool found = std::any_of(
      history.begin(), history.end(), [&](const auto& entry) {
        return entry.configuration == result.best_configuration;
      });
  EXPECT_TRUE(found);
}

TEST(TuningDriverTest, ValidationSkippedWhenDisabled) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  const std::size_t before = 3;
  const auto result = driver.run(before, /*validation_iterations=*/0);
  EXPECT_EQ(experiment.iterations_run(), before);  // no extra iterations
  EXPECT_DOUBLE_EQ(result.validated_wips, result.best_wips);
}

TEST(TuningDriverTest, RestartSessionsSeedsSearch) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  driver.run(2, /*validation_iterations=*/0);

  auto seed = webstack::default_values();
  seed[webstack::catalogue_index("cache_mem")] = 48;
  seed[webstack::catalogue_index("maxProcessors")] = 200;
  driver.restart_sessions(seed);

  // The rebuilt session proposes the seed as its first configuration and
  // the system is already running it.
  EXPECT_EQ(driver.server().get_configuration(0), seed);
  EXPECT_EQ(driver.server().evaluations(0), 0u);
  const auto proxy_id =
      system.cluster().tier(cluster::TierKind::kProxy).members()[0];
  EXPECT_EQ(system.proxy_on(proxy_id).params().cache_mem, 48LL * 1024 * 1024);
}

TEST(TuningDriverTest, RestartSessionsClampsOutOfRangeSeed) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  auto seed = webstack::default_values();
  seed[webstack::catalogue_index("cache_mem")] = 10'000'000;  // way over max
  driver.restart_sessions(seed);
  const auto& spec = webstack::parameter_catalogue()[0];
  EXPECT_EQ(driver.server().get_configuration(0)[0], spec.max_value);
}

TEST(TuningResultTest, MeanAndStddevWindows) {
  TuningResult result;
  result.wips_series = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(result.mean_wips(0, 4), 25.0);
  EXPECT_DOUBLE_EQ(result.mean_wips(2, 4), 35.0);
  EXPECT_NEAR(result.stddev_wips(0, 2), 7.0710678, 1e-6);
  // Out-of-range windows clamp.
  EXPECT_DOUBLE_EQ(result.mean_wips(2, 100), 35.0);
  EXPECT_EQ(result.mean_wips(10, 20), 0.0);
}

}  // namespace
}  // namespace ah::core
