// End-to-end integration tests: full system + workload + Harmony tuning,
// asserting the paper's qualitative claims on a reduced scale.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/system_model.hpp"
#include "core/tuning_driver.hpp"

namespace ah::core {
namespace {

using common::SimTime;

Experiment::Config reduced(tpcw::WorkloadKind workload, int browsers = 530) {
  Experiment::Config config;
  config.browsers = browsers;
  config.workload = workload;
  config.iteration.warmup = SimTime::seconds(10.0);
  config.iteration.measure = SimTime::seconds(40.0);
  config.iteration.cooldown = SimTime::seconds(2.0);
  return config;
}

double default_config_wips(tpcw::WorkloadKind workload) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, reduced(workload));
  experiment.run_iteration();
  experiment.run_iteration();
  return experiment.run_iteration().wips;
}

TEST(IntegrationTest, TuningImprovesBrowsingWorkload) {
  const double baseline = default_config_wips(tpcw::WorkloadKind::kBrowsing);

  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, reduced(tpcw::WorkloadKind::kBrowsing));
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  const auto result = driver.run(80);
  EXPECT_GT(result.validated_wips, baseline * 1.05)
      << "Harmony must find >5% on the browsing mix";
}

TEST(IntegrationTest, TunedConfigurationSustainsImprovement) {
  const double baseline = default_config_wips(tpcw::WorkloadKind::kBrowsing);

  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, reduced(tpcw::WorkloadKind::kBrowsing));
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  const auto result = driver.run(80);

  // Re-apply the best configuration and measure steady state.
  driver.apply_configuration(result.best_configuration);
  experiment.run_iteration();
  const double tuned = experiment.run_iteration().wips;
  EXPECT_GT(tuned, baseline * 1.03);
}

TEST(IntegrationTest, SecondHundredIterationsMostlyBeatDefault) {
  // Paper §III.A: "the performance of 78% of the iterations is better than
  // the default configuration" (browsing).  We assert a majority on a
  // shorter run.
  const double baseline = default_config_wips(tpcw::WorkloadKind::kBrowsing);

  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, reduced(tpcw::WorkloadKind::kBrowsing));
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kDuplication});
  const auto result = driver.run(90);
  int better = 0;
  int total = 0;
  for (std::size_t i = 45; i < result.wips_series.size(); ++i) {
    if (result.wips_series[i] > baseline) ++better;
    ++total;
  }
  EXPECT_GT(static_cast<double>(better) / total, 0.5);
}

TEST(IntegrationTest, PartitionedLinesTuneIndependently) {
  sim::Simulator sim;
  SystemModel::Config system_config;
  system_config.lines = {SystemModel::LineSpec{1, 1, 1},
                         SystemModel::LineSpec{1, 1, 1}};
  SystemModel system(sim, system_config);
  Experiment experiment(system,
                        reduced(tpcw::WorkloadKind::kBrowsing, 1060));
  TuningDriver driver(system, experiment,
                      {.method = TuningMethod::kPartitioning});
  const auto result = driver.run(30);
  EXPECT_EQ(driver.server().evaluations(0), 30u);
  EXPECT_EQ(driver.server().evaluations(1), 30u);
  EXPECT_GT(result.best_wips, 0.0);
}

TEST(IntegrationTest, SystemSurvivesExtremeConfigurations) {
  // Robustness: the simulation must not wedge or crash under boundary
  // values (max threads, minimal buffers, tiny caches).
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, reduced(tpcw::WorkloadKind::kOrdering, 300));

  std::vector<std::int64_t> extreme;
  for (const auto& spec : webstack::parameter_catalogue()) {
    extreme.push_back(spec.max_value);
  }
  system.apply_values_all(extreme);
  const auto high = experiment.run_iteration();
  EXPECT_GE(high.wips, 0.0);

  extreme.clear();
  for (const auto& spec : webstack::parameter_catalogue()) {
    extreme.push_back(spec.min_value);
  }
  system.apply_values_all(extreme);
  const auto low = experiment.run_iteration();
  EXPECT_GE(low.wips, 0.0);
}

TEST(IntegrationTest, ExtremeValuesUnderperformTuned) {
  // The paper observes that configurations with extreme values usually
  // perform poorly; maximal everything overcommits node memory.
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, reduced(tpcw::WorkloadKind::kShopping));

  experiment.run_iteration();
  const double sane = experiment.run_iteration().wips;

  std::vector<std::int64_t> extreme;
  for (const auto& spec : webstack::parameter_catalogue()) {
    extreme.push_back(spec.max_value);
  }
  system.apply_values_all(extreme);
  experiment.run_iteration();
  const double maxed = experiment.run_iteration().wips;
  EXPECT_LT(maxed, sane);
}

}  // namespace
}  // namespace ah::core
