// Sharded per-line timelines: determinism across thread counts, equivalence
// with the legacy single-timeline mode, line-local fault plans, and the
// shared immutable model layer.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/model_immutable.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/system_model.hpp"
#include "core/tuning_driver.hpp"

namespace ah::core {
namespace {

using cluster::TierKind;
using common::SimTime;

SystemModel::Config lines_config(std::vector<SystemModel::LineSpec> lines) {
  SystemModel::Config config;
  config.lines = std::move(lines);
  return config;
}

Experiment::Config fast_experiment(int browsers = 160) {
  Experiment::Config config;
  config.browsers = browsers;
  config.iteration.warmup = SimTime::seconds(5.0);
  config.iteration.measure = SimTime::seconds(20.0);
  config.iteration.cooldown = SimTime::seconds(2.0);
  return config;
}

/// Runs `iterations` on a freshly built sharded system with `threads`
/// worker threads (1 = serial) and returns every per-line WIPS reading
/// plus the final registry snapshot.
struct ShardedRun {
  std::vector<double> wips;
  std::string registry_json;
};

ShardedRun run_sharded(std::size_t threads, std::size_t iterations) {
  SystemModel system(lines_config({{1, 1, 1}, {1, 2, 1}, {2, 1, 1}, {1, 1, 1}}));
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<common::ThreadPool>(threads);
    system.set_thread_pool(pool.get());
  }
  Experiment experiment(system, fast_experiment(240));
  ShardedRun run;
  for (std::size_t i = 0; i < iterations; ++i) {
    const IterationResult result = experiment.run_iteration();
    run.wips.push_back(result.wips);
    run.wips.insert(run.wips.end(), result.line_wips.begin(),
                    result.line_wips.end());
  }
  run.registry_json = system.metrics().json_string();
  system.set_thread_pool(nullptr);
  return run;
}

TEST(ShardedModelTest, ShardedTimelineDeterminism) {
  // The headline contract: WIPS series and the full registry snapshot are
  // byte-identical whether the lines run serially or on 2 or 8 threads.
  const ShardedRun serial = run_sharded(1, 3);
  const ShardedRun two = run_sharded(2, 3);
  const ShardedRun eight = run_sharded(8, 3);
  EXPECT_EQ(serial.wips, two.wips);
  EXPECT_EQ(serial.wips, eight.wips);
  EXPECT_EQ(serial.registry_json, two.registry_json);
  EXPECT_EQ(serial.registry_json, eight.registry_json);
}

TEST(ShardedModelTest, ShardedMatchesLegacyPerLineWips) {
  // Without faults or health checking, a line's event stream is identical
  // whether it shares one timeline with its peers or owns a private one —
  // so per-line WIPS agree exactly between the two modes.
  const auto topology = lines_config({{1, 1, 1}, {1, 1, 1}});
  std::vector<double> legacy_wips;
  std::vector<double> sharded_wips;
  {
    sim::Simulator sim;
    SystemModel system(sim, topology);
    Experiment experiment(system, fast_experiment());
    for (int i = 0; i < 2; ++i) {
      const auto result = experiment.run_iteration();
      legacy_wips.insert(legacy_wips.end(), result.line_wips.begin(),
                         result.line_wips.end());
    }
  }
  {
    SystemModel system(topology);
    Experiment experiment(system, fast_experiment());
    for (int i = 0; i < 2; ++i) {
      const auto result = experiment.run_iteration();
      sharded_wips.insert(sharded_wips.end(), result.line_wips.begin(),
                          result.line_wips.end());
    }
  }
  EXPECT_EQ(legacy_wips, sharded_wips);
}

TEST(ShardedModelTest, AsymmetricLinesApplyValuesLineIsScoped) {
  SystemModel system(lines_config({{2, 1, 1}, {1, 3, 1}, {1, 1, 2}}));
  ASSERT_EQ(system.line_count(), 3u);
  EXPECT_EQ(system.cluster().node_count(), 4u + 5u + 4u);
  for (std::size_t line = 0; line < 3; ++line) {
    for (const auto id : system.line_nodes(line)) {
      EXPECT_EQ(system.line_of(id), line);
    }
  }
  auto values = webstack::default_values();
  values[webstack::catalogue_index("maxProcessors")] = 321;
  system.apply_values_line(1, values);
  for (std::size_t line = 0; line < 3; ++line) {
    for (const auto id : system.line_nodes(line)) {
      if (system.cluster().tier_of(id) != TierKind::kApp) continue;
      EXPECT_EQ(system.app_on(id).params().max_processors,
                line == 1 ? 321 : webstack::AppParams{}.max_processors);
    }
  }
}

TEST(ShardedModelTest, FaultPlanStaysLineLocal) {
  SystemModel system(lines_config({{1, 1, 1}, {1, 1, 1}}));
  const auto victim = system.line_nodes(1).at(0);
  sim::FaultPlan plan;
  sim::FaultEvent crash;
  crash.kind = sim::FaultEvent::Kind::kCrash;
  crash.at = SimTime::seconds(1.0);
  crash.node = victim;
  plan.events.push_back(crash);
  system.install_fault_plan(plan);
  system.run_all_until(SimTime::seconds(2.0));
  EXPECT_FALSE(system.cluster().node(victim).alive());
  for (const auto id : system.line_nodes(0)) {
    EXPECT_TRUE(system.cluster().node(id).alive());
  }
  EXPECT_EQ(system.disturbance_count(), 1u);
}

TEST(ShardedModelTest, PerLineHealthCheckersAreScoped) {
  SystemModel system(lines_config({{1, 1, 1}, {1, 1, 1}}));
  system.enable_fault_tolerance({});
  for (std::size_t line = 0; line < 2; ++line) {
    auto* checker = system.line_health_checker(line);
    ASSERT_NE(checker, nullptr);
    EXPECT_EQ(checker->scope(), system.line_nodes(line));
  }
  // A crash in line 1 is marked down by line 1's checker; line 0's marks
  // are untouched.
  const auto victim = system.line_nodes(1).at(0);
  system.run_all_until(SimTime::seconds(1.0));
  system.crash_node(victim);
  system.run_all_until(
      SimTime::seconds(1.0) +
      cluster::HealthChecker::probe_budget(
          system.line_health_checker(1)->config()));
  EXPECT_FALSE(system.cluster().node(victim).marked_up());
  for (const auto id : system.line_nodes(0)) {
    EXPECT_TRUE(system.cluster().node(id).marked_up());
  }
}

TEST(ShardedModelTest, SingleTimelineAccessorsThrowWhenSharded) {
  SystemModel system(lines_config({{1, 1, 1}, {1, 1, 1}}));
  EXPECT_THROW(static_cast<void>(system.simulator()), std::logic_error);
  EXPECT_THROW(
      system.move_node(system.line_nodes(0).at(0), TierKind::kApp, true,
                       SimTime::seconds(1.0)),
      std::logic_error);
  obs::TraceRecorder trace(16);
  EXPECT_THROW(system.set_trace_recorder(&trace), std::logic_error);
  EXPECT_NO_THROW(system.set_trace_recorder(nullptr));
  EXPECT_NO_THROW(static_cast<void>(system.line_simulator(1)));
  EXPECT_THROW(static_cast<void>(system.line_simulator(2)),
               std::out_of_range);
}

TEST(ShardedModelTest, AllNodesIsCachedAndStable) {
  SystemModel system(lines_config({{1, 2, 1}, {1, 1, 1}}));
  const auto* first = &system.all_nodes();
  const auto* second = &system.all_nodes();
  EXPECT_EQ(first, second);  // same vector, not a fresh copy per call
  ASSERT_EQ(first->size(), system.cluster().node_count());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i], static_cast<cluster::NodeId>(i));
  }
}

TEST(ShardedModelTest, ReplicasShareOneImmutableLayer) {
  common::ThreadPool pool(2);
  ParallelEvaluator::Options options;
  options.topology = lines_config({{1, 1, 1}});
  options.experiment = fast_experiment(60);
  options.replicas = 3;
  ParallelEvaluator evaluator(pool, options);
  const ModelImmutable* layer = evaluator.replica_system(0).immutable();
  ASSERT_NE(layer, nullptr);
  const auto popularity = evaluator.replica_system(0).shared_popularity();
  ASSERT_NE(popularity, nullptr);
  for (std::size_t r = 1; r < 3; ++r) {
    EXPECT_EQ(evaluator.replica_system(r).immutable(), layer);
    EXPECT_EQ(evaluator.replica_system(r).shared_popularity(), popularity);
  }
  EXPECT_EQ(layer->line_count(), 1u);
  EXPECT_EQ(layer->node_count(), 3u);
  // The layer's topology copy must not point at itself.
  EXPECT_EQ(layer->topology().shared, nullptr);
}

TEST(ShardedModelTest, TuningDriverRunsShardedWithThreads) {
  // threads != 1 on a sharded system keeps the sequential candidate
  // protocol (intra-model parallelism only) — the series must match the
  // single-threaded run exactly.
  std::vector<double> series_1;
  std::vector<double> series_4;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SystemModel system(lines_config({{1, 1, 1}, {1, 1, 1}}));
    Experiment experiment(system, fast_experiment());
    TuningDriver::Options options;
    options.method = TuningMethod::kDuplication;
    options.threads = threads;
    TuningDriver driver(system, experiment, options);
    const TuningResult result = driver.run(4, 0);
    (threads == 1 ? series_1 : series_4) = result.wips_series;
  }
  EXPECT_EQ(series_1, series_4);
}

}  // namespace
}  // namespace ah::core
