// Acceptance test for the fault-injection + graceful-degradation subsystem:
// a scripted app-node crash must be detected within the health checker's
// probe budget, traffic must reroute (zero requests reach the dead node),
// goodput must degrade gracefully rather than collapse, and recovery must
// restore throughput — all bit-identically across worker thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/system_model.hpp"
#include "core/tuning_driver.hpp"
#include "sim/fault_injector.hpp"
#include "webstack/params.hpp"

namespace ah::core {
namespace {

using cluster::TierKind;
using common::SimTime;

Experiment::Config small_config(int browsers = 200) {
  Experiment::Config config;
  config.browsers = browsers;
  config.workload = tpcw::WorkloadKind::kShopping;
  config.iteration.warmup = SimTime::seconds(5.0);
  config.iteration.measure = SimTime::seconds(20.0);
  config.iteration.cooldown = SimTime::seconds(1.0);
  return config;
}

SystemModel::FaultToleranceConfig fast_fault_tolerance() {
  SystemModel::FaultToleranceConfig ft;
  ft.health.period = SimTime::millis(200);
  ft.health.mark_down_after = 2;
  ft.health.mark_up_after = 2;
  return ft;
}

TEST(FaultRecoveryTest, CrashMarkDownRerouteGoodputAndRecovery) {
  sim::Simulator sim;
  SystemModel::Config topology;
  topology.lines = {SystemModel::LineSpec{1, 2, 1}};  // a spare app node
  SystemModel system(sim, topology);
  const auto ft = fast_fault_tolerance();
  system.enable_fault_tolerance(ft);
  ASSERT_TRUE(system.fault_tolerance_enabled());

  Experiment experiment(system, small_config());
  experiment.run_iteration();  // 0..26 s: cache warm-up
  const auto healthy = experiment.run_iteration();  // 26..52 s
  EXPECT_FALSE(healthy.disturbed);
  EXPECT_GT(healthy.wips, 0.0);

  // Crash the second app node at t = 60 s, bring it back at t = 120 s.
  const auto victim = system.cluster().tier(TierKind::kApp).members()[1];
  const std::string plan_text = "crash:" + std::to_string(victim) +
                                "@60; restart:" + std::to_string(victim) +
                                "@120";
  const auto plan = sim::FaultPlan::parse(plan_text);
  ASSERT_TRUE(plan.has_value());
  system.install_fault_plan(*plan);

  // 52..78 s: the crash (and its health transition) lands mid-window.
  const auto transition_down = experiment.run_iteration();
  EXPECT_TRUE(transition_down.disturbed);

  // Mark-down must have completed within the probe budget — long past by
  // the end of that iteration.
  EXPECT_FALSE(system.cluster().node(victim).alive());
  EXPECT_FALSE(system.cluster().node(victim).marked_up());
  EXPECT_EQ(system.cluster().tier(TierKind::kApp).healthy_count(), 1u);
  EXPECT_GE(system.health_checker()->transitions(), 1u);
  const SimTime budget = cluster::HealthChecker::probe_budget(ft.health);
  EXPECT_LE(budget, SimTime::seconds(1.0));  // fast config sanity

  // 78..104 s: steady-state outage.  The dead node must see ZERO requests
  // (its refusal counter stays flat), and the survivor carries the load:
  // goodput degrades, it does not collapse, and fail-fast + rerouting keep
  // the error ratio tiny.
  const auto refused_before = system.app_on(victim).stats().refused;
  const auto outage = experiment.run_iteration();
  EXPECT_EQ(system.app_on(victim).stats().refused, refused_before);
  EXPECT_GT(outage.wips, 0.2 * healthy.wips);
  EXPECT_LT(outage.error_ratio, 0.10);
  EXPECT_FALSE(outage.disturbed);  // no fault *event* inside this window

  // 104..130 s: restart at 120 s lands mid-window.
  const auto transition_up = experiment.run_iteration();
  EXPECT_TRUE(transition_up.disturbed);
  EXPECT_TRUE(system.cluster().node(victim).alive());
  EXPECT_TRUE(system.cluster().node(victim).marked_up());
  EXPECT_EQ(system.cluster().tier(TierKind::kApp).healthy_count(), 2u);

  // 130..156 s: recovered steady state.
  const auto recovered = experiment.run_iteration();
  EXPECT_FALSE(recovered.disturbed);
  EXPECT_GT(recovered.wips, 0.7 * healthy.wips);
  EXPECT_LT(recovered.error_ratio, 0.05);

  // The dead node served requests again after recovery.
  EXPECT_GT(system.app_on(victim).stats().refused, 0u);  // pre-mark-down window
  EXPECT_GE(system.disturbance_count(), 4u);  // crash, down, restart, up
}

TEST(FaultRecoveryTest, SequentialDriverDiscardsDisturbedWindows) {
  sim::Simulator sim;
  SystemModel::Config topology;
  topology.lines = {SystemModel::LineSpec{1, 2, 1}};
  SystemModel system(sim, topology);
  system.enable_fault_tolerance(fast_fault_tolerance());
  Experiment experiment(system, small_config(60));

  const auto victim = system.cluster().tier(TierKind::kApp).members()[1];
  const std::string plan_text = "crash:" + std::to_string(victim) +
                                "@30; restart:" + std::to_string(victim) +
                                "@90";
  system.install_fault_plan(*sim::FaultPlan::parse(plan_text));

  TuningDriver::Options options;
  options.method = TuningMethod::kDuplication;
  options.threads = 1;  // legacy sequential path
  TuningDriver driver(system, experiment, options);
  const auto result = driver.run(6, /*validation_iterations=*/0);
  ASSERT_EQ(result.wips_series.size(), 6u);
  // Both fault events (and the paired health transitions) overlapped
  // measurement windows, so at least one window was discarded + re-run.
  EXPECT_GE(result.discarded_windows, 1u);
  for (const double w : result.wips_series) EXPECT_GT(w, 0.0);
}

// Fault scenario on a replica set: the recovery trajectory must be
// bit-identical at any worker thread count (TSAN job runs this too — the
// discard counter is the only cross-thread state).
std::vector<double> faulted_series(std::size_t threads) {
  common::ThreadPool pool(threads);
  ParallelEvaluator::Options options;
  options.topology.lines = {SystemModel::LineSpec{1, 2, 1}};
  options.experiment = small_config(60);
  options.replicas = 2;
  ParallelEvaluator evaluator(pool, options);
  for (std::size_t r = 0; r < evaluator.replica_count(); ++r) {
    SystemModel& replica = evaluator.replica_system(r);
    replica.enable_fault_tolerance(fast_fault_tolerance());
    const auto victim =
        replica.cluster().tier(TierKind::kApp).members()[1];
    const std::string plan_text = "crash:" + std::to_string(victim) +
                                  "@30; restart:" + std::to_string(victim) +
                                  "@90";
    replica.install_fault_plan(*sim::FaultPlan::parse(plan_text));
  }
  const std::vector<harmony::PointI> batch(6, webstack::default_values());
  std::vector<double> wips;
  const auto apply = [](SystemModel& system, const harmony::PointI& values) {
    system.apply_values_all(values);
  };
  for (int round = 0; round < 2; ++round) {
    for (const auto& result : evaluator.evaluate(batch, apply)) {
      wips.push_back(result.wips);
    }
  }
  wips.push_back(static_cast<double>(evaluator.discarded_windows()));
  return wips;
}

// Healthy (no-fault) counterpart: the calendar-queue scheduler drives
// every replica timeline, and its pop order must not depend on how
// replicas are spread over worker threads.  Catches any wheel/cascade
// state that would leak across timelines.
std::vector<double> healthy_series(std::size_t threads) {
  common::ThreadPool pool(threads);
  ParallelEvaluator::Options options;
  options.topology.lines = {SystemModel::LineSpec{1, 2, 1}};
  options.experiment = small_config(60);
  options.replicas = 2;
  ParallelEvaluator evaluator(pool, options);
  const std::vector<harmony::PointI> batch(6, webstack::default_values());
  std::vector<double> wips;
  const auto apply = [](SystemModel& system, const harmony::PointI& values) {
    system.apply_values_all(values);
  };
  for (int round = 0; round < 2; ++round) {
    for (const auto& result : evaluator.evaluate(batch, apply)) {
      wips.push_back(result.wips);
    }
  }
  return wips;
}

TEST(FaultDeterminismTest, SchedulerTrajectoryIdenticalAcrossThreadCounts) {
  const auto one = healthy_series(1);
  const auto two = healthy_series(2);
  const auto eight = healthy_series(8);
  ASSERT_EQ(one.size(), 12u);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  for (const double w : one) EXPECT_GT(w, 0.0);
}

TEST(FaultDeterminismTest, RecoveryTrajectoryIdenticalAcrossThreadCounts) {
  const auto one = faulted_series(1);
  const auto two = faulted_series(2);
  const auto eight = faulted_series(8);
  ASSERT_EQ(one.size(), 13u);  // 12 measurements + discard count
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  for (std::size_t i = 0; i + 1 < one.size(); ++i) EXPECT_GT(one[i], 0.0);
}

}  // namespace
}  // namespace ah::core
