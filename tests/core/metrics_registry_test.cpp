// SystemModel's unified metrics registry: coverage of the registered
// sources, per-iteration latency percentiles, span tracing through the full
// stack, and byte-identical snapshots across thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/system_model.hpp"
#include "obs/trace.hpp"
#include "webstack/params.hpp"

namespace ah::core {
namespace {

Experiment::Config small_experiment() {
  Experiment::Config config;
  config.browsers = 60;
  config.iteration.warmup = common::SimTime::seconds(4.0);
  config.iteration.measure = common::SimTime::seconds(10.0);
  config.iteration.cooldown = common::SimTime::seconds(1.0);
  config.seed = 7;
  return config;
}

TEST(MetricsRegistryTest, SystemModelRegistersAllSourceFamilies) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  obs::Registry& metrics = system.metrics();
  EXPECT_GT(metrics.counter_count(), 10u);
  EXPECT_GT(metrics.gauge_count(), 0u);
  // One line: frontend + app hop + db hop histograms.
  EXPECT_EQ(metrics.histogram_count(), 3u);
  const std::string json = metrics.json_string();
  for (const char* name :
       {"network.messages_sent", "scheduler.events_executed",
        "routers.timeouts", "proxy.served", "app.served", "db.queries",
        "pools.db_connections.in_use", "monitor.samples_taken",
        "faults.disturbances", "line0.frontend_latency"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(MetricsRegistryTest, CountersAdvanceWithTraffic) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, small_experiment());
  EXPECT_EQ(system.metrics().counter_value("proxy.served"), 0u);
  const IterationResult result = experiment.run_iteration();
  EXPECT_GT(result.wips, 0.0);
  obs::Registry& metrics = system.metrics();
  EXPECT_GT(metrics.counter_value("proxy.served"), 0u);
  EXPECT_GT(metrics.counter_value("network.messages_sent"), 0u);
  EXPECT_GT(metrics.counter_value("scheduler.events_executed"), 0u);
  EXPECT_GT(metrics.counter_value("monitor.samples_taken"), 0u);
  // Hop histograms fill passively (no opt-in needed).
  EXPECT_GT(system.frontend_latency(0).count(), 0u);
  EXPECT_GT(system.app_hop_latency(0).count(), 0u);
  EXPECT_GT(system.db_hop_latency(0).count(), 0u);
}

TEST(MetricsRegistryTest, IterationPercentilesAreOrdered) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, small_experiment());
  const IterationResult result = experiment.run_iteration();
  EXPECT_GT(result.p50_ms, 0.0);
  EXPECT_LE(result.p50_ms, result.p95_ms);
  EXPECT_LE(result.p95_ms, result.p99_ms);
  EXPECT_LE(result.p99_ms, result.max_ms);
  // The mean of the same distribution must sit within its extremes.
  EXPECT_LE(result.p50_ms, result.max_ms);
  EXPECT_GT(result.mean_latency_ms, 0.0);
}

TEST(MetricsRegistryTest, TraceRecorderSeesAllThreeHops) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, small_experiment());
  obs::TraceRecorder trace(/*every_nth=*/1, /*capacity=*/1 << 14);
  system.set_trace_recorder(&trace);
  experiment.run_iteration();
  EXPECT_GT(trace.recorded(), 0u);
  bool saw[3] = {false, false, false};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::Span& span = trace.span(i);
    saw[static_cast<std::size_t>(span.hop)] = true;
    EXPECT_LE(span.enqueue.as_micros(), span.start.as_micros());
    EXPECT_LE(span.start.as_micros(), span.complete.as_micros());
    EXPECT_NE(span.node[0], '\0');
  }
  EXPECT_TRUE(saw[0]);  // proxy
  EXPECT_TRUE(saw[1]);  // app
  EXPECT_TRUE(saw[2]);  // db
  // Detaching stops recording.
  system.set_trace_recorder(nullptr);
  const std::uint64_t frozen = trace.recorded();
  experiment.run_iteration();
  EXPECT_EQ(trace.recorded(), frozen);
}

// Deterministic in-bounds candidate: nudge one dimension of the defaults.
harmony::PointI nudged_candidate(std::size_t i) {
  const auto& catalogue = webstack::parameter_catalogue();
  harmony::PointI point = webstack::default_values();
  const std::size_t d = i % point.size();
  const auto& spec = catalogue[d];
  point[d] = spec.min_value + (spec.max_value - spec.min_value) / 2;
  return point;
}

std::string metrics_across_replicas(std::size_t threads) {
  common::ThreadPool pool(threads);
  ParallelEvaluator::Options options;
  options.experiment = small_experiment();
  options.replicas = 2;
  ParallelEvaluator evaluator(pool, options);
  std::vector<harmony::PointI> batch;
  for (std::size_t i = 0; i < 4; ++i) batch.push_back(nudged_candidate(i));
  evaluator.evaluate(batch,
                     [](SystemModel& system, const harmony::PointI& values) {
                       system.apply_values_all(values);
                     });
  std::string all;
  for (std::size_t r = 0; r < evaluator.replica_count(); ++r) {
    all += evaluator.replica_system(r).metrics().json_string();
  }
  return all;
}

TEST(MetricsRegistryTest, SnapshotsByteIdenticalAcrossThreadCounts) {
  // The tentpole's determinism claim: metrics.json depends only on the
  // simulated history, never on how many pool threads advanced it.
  const std::string one = metrics_across_replicas(1);
  const std::string two = metrics_across_replicas(2);
  const std::string eight = metrics_across_replicas(8);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace ah::core
