#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace ah::core {
namespace {

using common::SimTime;

Experiment::Config fast_config(int browsers = 120) {
  Experiment::Config config;
  config.browsers = browsers;
  config.iteration.warmup = SimTime::seconds(5.0);
  config.iteration.measure = SimTime::seconds(20.0);
  config.iteration.cooldown = SimTime::seconds(2.0);
  return config;
}

TEST(ExperimentTest, IterationAdvancesSimulatedTime) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  experiment.run_iteration();
  EXPECT_EQ(sim.now(), SimTime::seconds(27.0));
  experiment.run_iteration();
  EXPECT_EQ(sim.now(), SimTime::seconds(54.0));
  EXPECT_EQ(experiment.iterations_run(), 2u);
}

TEST(ExperimentTest, MeasuresPositiveWips) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  const auto result = experiment.run_iteration();
  EXPECT_GT(result.wips, 0.0);
  EXPECT_GT(result.mean_latency_ms, 0.0);
  EXPECT_EQ(result.line_wips.size(), 1u);
  EXPECT_NEAR(result.line_wips[0], result.wips, 1e-9);
}

TEST(ExperimentTest, BrowseOrderSplitSumsToTotal) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config());
  const auto result = experiment.run_iteration();
  EXPECT_NEAR(result.wips_browse + result.wips_order, result.wips, 1e-9);
}

TEST(ExperimentTest, ThroughputScalesWithBrowsers) {
  double wips_small = 0.0;
  double wips_large = 0.0;
  {
    sim::Simulator sim;
    SystemModel system(sim, {});
    Experiment experiment(system, fast_config(60));
    experiment.run_iteration();
    wips_small = experiment.run_iteration().wips;
  }
  {
    sim::Simulator sim;
    SystemModel system(sim, {});
    Experiment experiment(system, fast_config(180));
    experiment.run_iteration();
    wips_large = experiment.run_iteration().wips;
  }
  EXPECT_GT(wips_large, wips_small * 2.0);
}

TEST(ExperimentTest, WorkloadSwitchChangesMix) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  auto config = fast_config(200);
  config.workload = tpcw::WorkloadKind::kBrowsing;
  Experiment experiment(system, config);
  experiment.run_iteration();
  const auto browsing = experiment.run_iteration();
  const double browse_share_before =
      browsing.wips_browse / std::max(1e-9, browsing.wips);
  experiment.set_workload(tpcw::WorkloadKind::kOrdering);
  EXPECT_EQ(experiment.workload(), tpcw::WorkloadKind::kOrdering);
  experiment.run_iteration();  // transition iteration
  const auto ordering = experiment.run_iteration();
  const double browse_share_after =
      ordering.wips_browse / std::max(1e-9, ordering.wips);
  EXPECT_GT(browse_share_before, 0.85);
  EXPECT_LT(browse_share_after, 0.62);
}

TEST(ExperimentTest, PerLineMetersForMultiLine) {
  sim::Simulator sim;
  SystemModel::Config system_config;
  system_config.lines = {SystemModel::LineSpec{1, 1, 1},
                         SystemModel::LineSpec{1, 1, 1}};
  SystemModel system(sim, system_config);
  Experiment experiment(system, fast_config(200));
  experiment.run_iteration();
  const auto result = experiment.run_iteration();
  ASSERT_EQ(result.line_wips.size(), 2u);
  EXPECT_GT(result.line_wips[0], 0.0);
  EXPECT_GT(result.line_wips[1], 0.0);
  // Browsers split evenly: lines should carry comparable load.
  EXPECT_NEAR(result.line_wips[0], result.line_wips[1],
              0.35 * result.line_wips[0]);
}

TEST(ExperimentTest, WirtTrackerReceivesPerInteractionLatencies) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, fast_config(200));
  tpcw::WirtTracker wirt;
  experiment.set_wirt_tracker(&wirt);
  experiment.run_iteration();
  // A healthy lightly-loaded system is WIRT-compliant and the tracker saw
  // the bulk of the mix.
  EXPECT_TRUE(wirt.compliant());
  EXPECT_GT(wirt.samples(tpcw::Interaction::kHome), 0u);
  EXPECT_GT(wirt.samples(tpcw::Interaction::kSearchRequest), 0u);
  // Detaching stops recording.
  wirt.reset();
  experiment.set_wirt_tracker(nullptr);
  experiment.run_iteration();
  EXPECT_EQ(wirt.samples(tpcw::Interaction::kHome), 0u);
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  double first = 0.0;
  double second = 0.0;
  for (int run = 0; run < 2; ++run) {
    sim::Simulator sim;
    SystemModel system(sim, {});
    auto config = fast_config();
    config.seed = 99;
    Experiment experiment(system, config);
    experiment.run_iteration();
    const double wips = experiment.run_iteration().wips;
    (run == 0 ? first : second) = wips;
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ah::core
