// Failure injection: the cluster must degrade gracefully, never wedge, and
// recover — the "running continuously and reliably" requirement the paper's
// introduction sets for e-commerce systems.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/system_model.hpp"

namespace ah::core {
namespace {

using cluster::TierKind;
using common::SimTime;

Experiment::Config small_config(int browsers = 200) {
  Experiment::Config config;
  config.browsers = browsers;
  config.workload = tpcw::WorkloadKind::kShopping;
  config.iteration.warmup = SimTime::seconds(5.0);
  config.iteration.measure = SimTime::seconds(20.0);
  config.iteration.cooldown = SimTime::seconds(1.0);
  return config;
}

TEST(FailureInjectionTest, DbOutageDegradesToCacheableTrafficAndRecovers) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, small_config());
  experiment.run_iteration();
  const auto healthy = experiment.run_iteration();

  // Kill the database mid-run: dynamic pages fail, cacheable pages keep
  // flowing from the proxy.
  const auto db_id = system.cluster().tier(TierKind::kDb).members()[0];
  system.db_on(db_id).set_active(false);
  experiment.run_iteration();  // transition
  const auto outage = experiment.run_iteration();
  EXPECT_LT(outage.wips, healthy.wips);
  EXPECT_GT(outage.error_ratio, 0.10);
  EXPECT_GT(outage.wips_browse, 0.0);  // static traffic survives

  // Recovery: reactivate and confirm throughput returns.
  system.db_on(db_id).set_active(true);
  experiment.run_iteration();
  const auto recovered = experiment.run_iteration();
  EXPECT_GT(recovered.wips, outage.wips);
  EXPECT_LT(recovered.error_ratio, 0.05);
}

TEST(FailureInjectionTest, AppOutageFailsDynamicTraffic) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, small_config());
  experiment.run_iteration();
  const auto app_id = system.cluster().tier(TierKind::kApp).members()[0];
  system.app_on(app_id).set_active(false);
  experiment.run_iteration();
  const auto outage = experiment.run_iteration();
  // Every non-cached page fails; the system keeps responding (no wedge).
  EXPECT_GT(outage.error_ratio, 0.10);
  EXPECT_GT(outage.wips, 0.0);
}

TEST(FailureInjectionTest, OneOfTwoAppNodesDownHalvesCapacityOnly) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{1, 2, 1}};
  SystemModel system(sim, config);
  Experiment experiment(system, small_config(400));
  experiment.run_iteration();
  const auto before = experiment.run_iteration();

  // Deregister one app server the way reconfiguration drains a node: stop
  // new traffic by deactivating; the router's other backend absorbs load.
  const auto victims = system.cluster().tier(TierKind::kApp).members();
  system.app_on(victims[1]).set_active(false);
  experiment.run_iteration();
  const auto after = experiment.run_iteration();
  // Errors rise (the dead backend still gets picked and fails fast) but
  // the system keeps a substantial fraction of its throughput.
  EXPECT_GT(after.wips, before.wips * 0.25);
}

TEST(FailureInjectionTest, MoveUnderFullLoadKeepsServing) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{3, 2, 2}};
  SystemModel system(sim, config);
  Experiment experiment(system, small_config(1200));  // heavy load
  experiment.run_iteration();

  const auto donor = system.cluster().tier(TierKind::kProxy).members()[0];
  system.move_node(donor, TierKind::kApp, /*immediate=*/false,
                   SimTime::seconds(8.0));
  // The drain path must complete even while the queue never fully rests.
  const auto during = experiment.run_iteration();
  EXPECT_GT(during.wips, 0.0);
  experiment.run_iteration();
  EXPECT_FALSE(system.move_in_progress(donor));
  EXPECT_EQ(system.cluster().tier_of(donor), TierKind::kApp);
  const auto after = experiment.run_iteration();
  EXPECT_GT(after.wips, 0.0);
}

TEST(FailureInjectionTest, RepeatedReconfigurationIsStable) {
  sim::Simulator sim;
  SystemModel::Config config;
  config.lines = {SystemModel::LineSpec{3, 3, 1}};
  SystemModel system(sim, config);
  Experiment experiment(system, small_config(300));
  experiment.run_iteration();
  // Bounce a node back and forth several times; each move must complete
  // and the system must keep serving.
  const auto wanderer = system.cluster().tier(TierKind::kProxy).members()[0];
  for (int round = 0; round < 3; ++round) {
    system.move_node(wanderer, TierKind::kApp, true, SimTime::seconds(4.0));
    experiment.run_iteration();
    ASSERT_FALSE(system.move_in_progress(wanderer));
    system.move_node(wanderer, TierKind::kProxy, true, SimTime::seconds(4.0));
    experiment.run_iteration();
    ASSERT_FALSE(system.move_in_progress(wanderer));
  }
  const auto final_result = experiment.run_iteration();
  EXPECT_GT(final_result.wips, 0.0);
  EXPECT_EQ(system.cluster().tier(TierKind::kProxy).size(), 3u);
  EXPECT_EQ(system.cluster().tier(TierKind::kApp).size(), 3u);
}

TEST(FailureInjectionTest, PathologicalConfigThenRecoveryViaDefaults) {
  sim::Simulator sim;
  SystemModel system(sim, {});
  Experiment experiment(system, small_config());
  experiment.run_iteration();
  const auto healthy = experiment.run_iteration();

  // Worst-case configuration: minimum everything (1 thread, no queues,
  // tiny caches).  The system must limp, not deadlock.
  std::vector<std::int64_t> minimal;
  for (const auto& spec : webstack::parameter_catalogue()) {
    minimal.push_back(spec.min_value);
  }
  system.apply_values_all(minimal);
  experiment.run_iteration();
  const auto crippled = experiment.run_iteration();
  EXPECT_GE(crippled.wips, 0.0);

  // Applying the defaults restores health within two iterations.
  system.apply_values_all(webstack::default_values());
  experiment.run_iteration();
  const auto restored = experiment.run_iteration();
  EXPECT_GT(restored.wips, healthy.wips * 0.8);
}

}  // namespace
}  // namespace ah::core
