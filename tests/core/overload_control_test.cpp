// Overload robustness end to end: admission shedding through the proxy
// tier, the identity-scenario bit-compatibility guarantee, reactive
// reconfiguration on mark-down and on sustained p95 breach, scenario
// determinism across thread counts, and retry x serve-stale behaviour
// under fail-slow plus link-degradation faults.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

#include "core/experiment.hpp"
#include "core/reconfig_controller.hpp"
#include "core/system_model.hpp"
#include "sim/scenario.hpp"

namespace ah::core {
namespace {

using cluster::TierKind;
using common::SimTime;

SystemModel::Config lines_config(std::vector<SystemModel::LineSpec> lines) {
  SystemModel::Config config;
  config.lines = std::move(lines);
  return config;
}

Experiment::Config fast_experiment(int browsers) {
  Experiment::Config config;
  config.browsers = browsers;
  config.iteration.warmup = SimTime::seconds(5.0);
  config.iteration.measure = SimTime::seconds(20.0);
  config.iteration.cooldown = SimTime::seconds(2.0);
  return config;
}

sim::ScenarioPlan parse_scenario(const std::string& text) {
  std::string error;
  auto plan = sim::ScenarioPlan::parse(text, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return *plan;
}

TEST(OverloadControlTest, AdmissionShedsUnderOverloadAndTaintsWindows) {
  sim::Simulator sim;
  SystemModel system(sim, lines_config({{1, 1, 1}}));
  SystemModel::OverloadControlConfig control;
  control.admission.target_p95 = SimTime::millis(60);
  system.enable_admission_control(control);
  ASSERT_TRUE(system.admission_control_enabled());
  ASSERT_NE(system.line_admission(0), nullptr);

  Experiment experiment(system, fast_experiment(500));
  experiment.apply_scenario(parse_scenario("flash:3@5-50"));
  bool disturbed = false;
  double wips = 0.0;
  for (int i = 0; i < 2; ++i) {
    const IterationResult result = experiment.run_iteration();
    disturbed = disturbed || result.disturbed;
    wips = result.wips;
  }
  const obs::Registry& metrics = system.metrics();
  EXPECT_GT(metrics.counter_value("ctrl.shed"), 0u);
  EXPECT_GT(metrics.counter_value("ctrl.admitted"), 0u);
  EXPECT_GT(metrics.counter_value("ctrl.adjustments"), 0u);
  EXPECT_EQ(metrics.counter_value("proxy.shed"),
            metrics.counter_value("ctrl.shed"));
  // Serve-stale (the default shed mode) absorbs cacheable sheds.
  EXPECT_GT(metrics.counter_value("proxy.shed_stale"), 0u);
  EXPECT_LT(system.line_admission(0)->admit_fraction(), 1.0);
  // Controller actuations taint measurement windows like faults do, so the
  // tuner discards them (the harmony-side satellite of this stack).
  EXPECT_TRUE(disturbed);
  EXPECT_GT(wips, 0.0);
}

TEST(OverloadControlTest, IdentityScenarioIsBitIdentical) {
  // A flash with peak 1.0 divides every think draw by exactly 1.0; the
  // whole run must be bit-identical to a scenario-free one.  This is the
  // property that keeps the golden benchmark CSVs valid.
  std::vector<double> plain;
  std::vector<double> identity;
  for (const bool with_scenario : {false, true}) {
    sim::Simulator sim;
    SystemModel system(sim, lines_config({{1, 1, 1}}));
    Experiment experiment(system, fast_experiment(120));
    if (with_scenario) {
      experiment.apply_scenario(parse_scenario("flash:1@0-1000"));
    }
    auto& out = with_scenario ? identity : plain;
    for (int i = 0; i < 2; ++i) out.push_back(experiment.run_iteration().wips);
  }
  EXPECT_EQ(plain, identity);
}

TEST(OverloadControlTest, ReactiveBorrowsOnMarkDown) {
  sim::Simulator sim;
  SystemModel system(sim, lines_config({{2, 2, 2}}));
  system.enable_fault_tolerance({});
  Experiment experiment(system, fast_experiment(200));
  experiment.run_iteration();  // traffic + monitor samples for readings()

  ReconfigController controller(system);
  ReconfigController::ReactiveOptions options;
  options.min_healthy = 2;  // capacity-sensitive: react to 2 -> 1 healthy
  controller.enable_reactive(options);
  ASSERT_TRUE(controller.reactive_enabled());

  const auto victim = system.cluster().tier(TierKind::kDb).members()[1];
  const double crash_at = system.now().as_seconds() + 5.0;
  sim::FaultPlan plan;
  sim::FaultEvent crash;
  crash.kind = sim::FaultEvent::Kind::kCrash;
  crash.at = SimTime::seconds(crash_at);
  crash.node = victim;
  plan.events.push_back(crash);
  system.install_fault_plan(plan);

  for (int i = 0; i < 2; ++i) experiment.run_iteration();
  // The mark-down left the db tier below min_healthy; the controller
  // borrowed a healthy node from another tier to backfill it.
  EXPECT_EQ(controller.reactive_moves(), 1u);
  ASSERT_EQ(controller.moves().size(), 1u);
  EXPECT_EQ(controller.moves()[0].to_tier, static_cast<int>(TierKind::kDb));
  EXPECT_GE(system.cluster().tier(TierKind::kDb).healthy_count(), 2u);
}

TEST(OverloadControlTest, ReactiveBorrowsOnSustainedP95Breach) {
  sim::Simulator sim;
  SystemModel system(sim, lines_config({{2, 2, 2}}));
  Experiment experiment(system, fast_experiment(400));
  for (int i = 0; i < 2; ++i) experiment.run_iteration();

  ReconfigController controller(system);
  ReconfigController::ReactiveOptions options;
  options.p95_target = SimTime::millis(100);
  options.breach_streak = 3;
  controller.enable_reactive(options);

  // Two breaches: still inside the hysteresis streak.
  EXPECT_FALSE(controller.observe_p95(SimTime::millis(400)).has_value());
  EXPECT_FALSE(controller.observe_p95(SimTime::millis(400)).has_value());
  // A good window resets the streak entirely.
  EXPECT_FALSE(controller.observe_p95(SimTime::millis(50)).has_value());
  EXPECT_FALSE(controller.observe_p95(SimTime::millis(400)).has_value());
  EXPECT_FALSE(controller.observe_p95(SimTime::millis(400)).has_value());
  // Third consecutive breach: borrow for the hottest tier.
  const auto decision = controller.observe_p95(SimTime::millis(400));
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(controller.reactive_moves(), 1u);
  // Cooldown: an immediate further breach streak does not move again.
  for (int i = 0; i < 6; ++i) controller.observe_p95(SimTime::millis(400));
  EXPECT_EQ(controller.reactive_moves(), 1u);
}

TEST(OverloadControlTest, ReactiveRefusesShardedModels) {
  SystemModel system(lines_config({{1, 1, 1}, {1, 1, 1}}));
  ReconfigController controller(system);
  EXPECT_THROW(controller.enable_reactive({}), std::logic_error);
}

/// Full-stack scenario run on a sharded model: returns the WIPS series and
/// the registry snapshot for one thread count.
std::pair<std::vector<double>, std::string> scenario_run(std::size_t threads) {
  SystemModel system(lines_config({{1, 1, 1}, {1, 1, 1}}));
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<common::ThreadPool>(threads);
    system.set_thread_pool(pool.get());
  }
  system.enable_fault_tolerance({});
  SystemModel::OverloadControlConfig control;
  control.admission.target_p95 = SimTime::millis(150);
  system.enable_admission_control(control);

  Experiment experiment(system, fast_experiment(240));
  // Flash everywhere, mix drift, and a correlated rack outage taking both
  // line-1 backends — every event lands on its member's own timeline.
  const auto line1 = system.line_nodes(1);
  const std::string text =
      "flash:2.5@3-50; mix:ordering@10; rack:" + std::to_string(line1[1]) +
      "+" + std::to_string(line1[2]) + "@12-20";
  experiment.apply_scenario(parse_scenario(text));

  std::pair<std::vector<double>, std::string> out;
  for (int i = 0; i < 2; ++i) {
    const IterationResult result = experiment.run_iteration();
    out.first.push_back(result.wips);
    out.first.insert(out.first.end(), result.line_wips.begin(),
                     result.line_wips.end());
  }
  out.second = system.metrics().json_string();
  system.set_thread_pool(nullptr);
  return out;
}

TEST(OverloadControlTest, ScenarioRunsAreDeterministicAcrossThreadCounts) {
  const auto serial = scenario_run(1);
  const auto two = scenario_run(2);
  const auto eight = scenario_run(8);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first, two.first);
  EXPECT_EQ(serial.first, eight.first);
  EXPECT_EQ(serial.second, two.second);
  EXPECT_EQ(serial.second, eight.second);
}

TEST(OverloadControlTest, RetryAndServeStaleUnderFailSlowPlusLinkFaults) {
  sim::Simulator sim;
  SystemModel system(sim, lines_config({{1, 1, 1}}));
  system.enable_fault_tolerance({});  // upstream retries + serve-stale
  Experiment experiment(system, fast_experiment(150));
  // Warm the proxy cache, then age it past the 180s object TTL: serve-stale
  // only has something to serve once cached copies have expired.
  for (int i = 0; i < 7; ++i) experiment.run_iteration();

  // Fail-slow db plus a degraded app->db link across the next window: the
  // proxy's hop timeouts fire, retries re-forward, and cacheable misses
  // fall back to stale copies instead of erroring.
  const auto app = system.cluster().tier(TierKind::kApp).members()[0];
  const auto db = system.cluster().tier(TierKind::kDb).members()[0];
  const double t0 = system.now().as_seconds() + 2.0;
  const double t1 = t0 + 20.0;
  char text[128];
  std::snprintf(text, sizeof(text), "slow:%u@%.0f-%.0fx8; "
                "link:%u-%u@%.0f-%.0f,drop=0.8,delay=10ms",
                db, t0, t1, app, db, t0, t1);
  system.install_fault_plan(*sim::FaultPlan::parse(text));

  const IterationResult result = experiment.run_iteration();
  const obs::Registry& metrics = system.metrics();
  EXPECT_GT(metrics.counter_value("proxy.upstream_retries"), 0u);
  EXPECT_GT(metrics.counter_value("proxy.stale_served"), 0u);
  EXPECT_GT(result.wips, 0.0);  // degraded, not dead
  EXPECT_LT(result.error_ratio, 1.0);
}

TEST(OverloadControlTest, HealthMetricsTrackDownNodesInRegistry) {
  sim::Simulator sim;
  SystemModel system(sim, lines_config({{2, 2, 2}}));
  system.enable_fault_tolerance({});
  Experiment experiment(system, fast_experiment(100));
  experiment.run_iteration();

  const auto victim = system.cluster().tier(TierKind::kApp).members()[1];
  const double now_s = system.now().as_seconds();
  char text[64];
  std::snprintf(text, sizeof(text), "crash:%u@%.0f; restart:%u@%.0f", victim,
                now_s + 2.0, victim, now_s + 12.0);
  system.install_fault_plan(*sim::FaultPlan::parse(text));
  for (int i = 0; i < 2; ++i) experiment.run_iteration();

  const obs::Registry& metrics = system.metrics();
  EXPECT_GT(metrics.counter_value("health.failed_probes"), 0u);
  EXPECT_GE(metrics.counter_value("health.mark_downs"), 1u);
  EXPECT_GE(metrics.counter_value("health.mark_ups"), 1u);
  EXPECT_GT(metrics.counter_value("health.downtime_us"), 0u);
  // Everyone is back: the downtime window is closed and the gauge reads 0.
  EXPECT_NE(metrics.json_string().find("\"health.nodes_down\": 0.000000"),
            std::string::npos);
}

}  // namespace
}  // namespace ah::core
