#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ah::sim {
namespace {

using common::SimTime;

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.schedule(SimTime::millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::millis(5));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] { ++fired; });
  sim.schedule(SimTime::millis(10), [&] { ++fired; });
  sim.run_until(SimTime::millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(5));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, EventExactlyAtBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::millis(5), [&] { fired = true; });
  sim.run_until(SimTime::millis(5));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.run_until(SimTime::seconds(3.0));
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::millis(1), [&] {
    order.push_back(1);
    sim.schedule(SimTime::millis(1), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::millis(2));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(SimTime::millis(5), [&] {
    SimTime at = SimTime::zero();
    sim.schedule(SimTime::millis(-10), [&sim, &at] { at = sim.now(); });
    // The inner event must fire at now(), not in the past.
    (void)at;
  });
  sim.run();
  EXPECT_EQ(sim.now(), SimTime::millis(5));
}

TEST(SimulatorTest, ScheduleAtClampsToNow) {
  Simulator sim;
  SimTime fired_at = SimTime::zero();
  sim.schedule(SimTime::millis(10), [&] {
    sim.schedule_at(SimTime::millis(2), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, SimTime::millis(10));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(SimTime::millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::millis(1), [&] { ++fired; });
  sim.schedule(SimTime::millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(SimTime::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, RunUntilReturnsEventCount) {
  Simulator sim;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::millis(i), [] {});
  }
  EXPECT_EQ(sim.run_until(SimTime::millis(4)), 4u);
  EXPECT_EQ(sim.run_until(SimTime::millis(100)), 6u);
}

TEST(SimulatorTest, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.schedule(SimTime::millis(3), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, LongChainTerminates) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 10000) sim.schedule(SimTime::micros(1), hop);
  };
  sim.schedule(SimTime::micros(1), hop);
  sim.run();
  EXPECT_EQ(hops, 10000);
  EXPECT_EQ(sim.now(), SimTime::micros(10000));
}

}  // namespace
}  // namespace ah::sim
