#include "sim/monitor.hpp"

#include <gtest/gtest.h>

namespace ah::sim {
namespace {

using common::SimTime;

class MonitorTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(MonitorTest, SamplesOnPeriod) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0));
  int calls = 0;
  monitor.add_probe("p", [&] {
    ++calls;
    return 0.5;
  });
  monitor.start();
  sim_.run_until(SimTime::seconds(5.5));
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(monitor.samples_taken(), 5u);
}

TEST_F(MonitorTest, NoSamplesBeforeStart) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0));
  monitor.add_probe("p", [] { return 1.0; });
  sim_.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(monitor.samples_taken(), 0u);
}

TEST_F(MonitorTest, StopHaltsSampling) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0));
  monitor.add_probe("p", [] { return 1.0; });
  monitor.start();
  sim_.run_until(SimTime::seconds(2.5));
  monitor.stop();
  const auto samples = monitor.samples_taken();
  sim_.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(monitor.samples_taken(), samples);
}

TEST_F(MonitorTest, SmoothedIsEwma) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0), 0.5);
  double value = 0.0;
  monitor.add_probe("p", [&] { return value; });
  value = 1.0;
  monitor.sample_now();
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 1.0);
  value = 0.0;
  monitor.sample_now();
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 0.5);
  EXPECT_DOUBLE_EQ(monitor.last_raw(0), 0.0);
}

TEST_F(MonitorTest, MultipleProbesIndependent) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0), 1.0);
  const auto a = monitor.add_probe("a", [] { return 0.25; });
  const auto b = monitor.add_probe("b", [] { return 0.75; });
  monitor.sample_now();
  EXPECT_DOUBLE_EQ(monitor.smoothed(a), 0.25);
  EXPECT_DOUBLE_EQ(monitor.smoothed(b), 0.75);
  EXPECT_EQ(monitor.probe_name(a), "a");
  EXPECT_EQ(monitor.probe_name(b), "b");
}

TEST_F(MonitorTest, ZeroBeforeFirstSample) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0));
  monitor.add_probe("p", [] { return 0.9; });
  EXPECT_EQ(monitor.smoothed(0), 0.0);
  EXPECT_EQ(monitor.last_raw(0), 0.0);
}

TEST_F(MonitorTest, RestartResumesSampling) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0));
  monitor.add_probe("p", [] { return 0.1; });
  monitor.start();
  sim_.run_until(SimTime::seconds(2.5));
  monitor.stop();
  monitor.start();
  sim_.run_until(SimTime::seconds(5.5));
  EXPECT_GE(monitor.samples_taken(), 4u);
}

TEST_F(MonitorTest, SampleNowInterleavesWithPeriodicSampling) {
  // A forced sample between periodic ticks feeds the same EWMA stream and
  // counts in samples_taken, without disturbing the periodic schedule.
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0), 0.5);
  double value = 1.0;
  monitor.add_probe("p", [&] { return value; });
  monitor.start();
  sim_.run_until(SimTime::seconds(1.5));  // one periodic tick: ewma = 1.0
  value = 0.0;
  monitor.sample_now();                   // forced: ewma = 0.5
  EXPECT_EQ(monitor.samples_taken(), 2u);
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 0.5);
  value = 1.0;
  sim_.run_until(SimTime::seconds(2.5));  // next periodic tick still at t=2
  EXPECT_EQ(monitor.samples_taken(), 3u);
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 0.75);
}

TEST_F(MonitorTest, SampleNowWorksWhileStopped) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0), 1.0);
  monitor.add_probe("p", [] { return 0.6; });
  monitor.stop();  // never started; must be harmless
  monitor.sample_now();
  EXPECT_EQ(monitor.samples_taken(), 1u);
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 0.6);
  sim_.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(monitor.samples_taken(), 1u);  // still no periodic sampling
}

TEST_F(MonitorTest, EwmaSurvivesStopRestart) {
  // Readings freeze while stopped and the EWMA resumes from its frozen
  // value — restart must not reset smoothing state.
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0), 0.5);
  double value = 1.0;
  monitor.add_probe("p", [&] { return value; });
  monitor.start();
  sim_.run_until(SimTime::seconds(1.5));
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 1.0);
  monitor.stop();
  sim_.run_until(SimTime::seconds(10.0));
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 1.0);  // frozen
  value = 0.0;
  monitor.start();
  sim_.run_until(SimTime::seconds(11.5));  // one tick after restart
  EXPECT_DOUBLE_EQ(monitor.smoothed(0), 0.5);  // 0.5*1.0 + 0.5*0.0
}

TEST_F(MonitorTest, DoubleStartIsIdempotent) {
  UtilizationMonitor monitor(sim_, SimTime::seconds(1.0));
  int calls = 0;
  monitor.add_probe("p", [&] {
    ++calls;
    return 0.0;
  });
  monitor.start();
  monitor.start();
  sim_.run_until(SimTime::seconds(3.5));
  EXPECT_EQ(calls, 3);  // not doubled
}

}  // namespace
}  // namespace ah::sim
