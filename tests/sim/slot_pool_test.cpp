#include "sim/slot_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ah::sim {
namespace {

using common::SimTime;

class SlotPoolTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(SlotPoolTest, GrantsImmediatelyWhenFree) {
  SlotPool pool(sim_, "p", {.slots = 2});
  bool granted = false;
  EXPECT_TRUE(pool.acquire([&] { granted = true; }));
  EXPECT_TRUE(granted);  // synchronous grant
  EXPECT_EQ(pool.in_use(), 1);
}

TEST_F(SlotPoolTest, QueuesWhenFull) {
  SlotPool pool(sim_, "p", {.slots = 1});
  bool second = false;
  pool.acquire([] {});
  EXPECT_TRUE(pool.acquire([&] { second = true; }));
  EXPECT_FALSE(second);
  EXPECT_EQ(pool.queue_length(), 1u);
  pool.release();
  EXPECT_FALSE(second);  // deferred grant via zero-delay event
  sim_.run();
  EXPECT_TRUE(second);
}

TEST_F(SlotPoolTest, RejectsWhenQueueFull) {
  SlotPool pool(sim_, "p", {.slots = 1, .queue_capacity = 1});
  pool.acquire([] {});
  EXPECT_TRUE(pool.acquire([] {}));
  EXPECT_FALSE(pool.acquire([] { FAIL() << "must not be granted"; }));
  EXPECT_EQ(pool.rejected(), 1u);
}

TEST_F(SlotPoolTest, FifoGrantOrder) {
  SlotPool pool(sim_, "p", {.slots = 1});
  std::vector<int> order;
  pool.acquire([] {});
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  pool.release();
  sim_.run();
  pool.release();
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(SlotPoolTest, GrantedAndRejectedCounts) {
  SlotPool pool(sim_, "p", {.slots = 1, .queue_capacity = 0});
  pool.acquire([] {});
  pool.acquire([] {});
  pool.acquire([] {});
  EXPECT_EQ(pool.granted(), 1u);
  EXPECT_EQ(pool.rejected(), 2u);
}

TEST_F(SlotPoolTest, GrowAdmitsWaiters) {
  SlotPool pool(sim_, "p", {.slots = 1});
  int grants = 0;
  pool.acquire([&] { ++grants; });
  pool.acquire([&] { ++grants; });
  pool.acquire([&] { ++grants; });
  EXPECT_EQ(grants, 1);
  pool.set_slots(3);
  sim_.run();
  EXPECT_EQ(grants, 3);
  EXPECT_EQ(pool.in_use(), 3);
}

TEST_F(SlotPoolTest, ShrinkBelowInUseIsGraceful) {
  SlotPool pool(sim_, "p", {.slots = 2});
  pool.acquire([] {});
  pool.acquire([] {});
  pool.set_slots(1);
  EXPECT_EQ(pool.in_use(), 2);  // holders keep their slots
  bool waiter = false;
  pool.acquire([&] { waiter = true; });
  pool.release();
  sim_.run();
  EXPECT_FALSE(waiter);  // in_use (1) == slots (1): still full
  pool.release();
  sim_.run();
  EXPECT_TRUE(waiter);
}

TEST_F(SlotPoolTest, PeakInUseTracksHighWater) {
  SlotPool pool(sim_, "p", {.slots = 4});
  pool.acquire([] {});
  pool.acquire([] {});
  pool.acquire([] {});
  pool.release();
  pool.release();
  EXPECT_EQ(pool.in_use(), 1);
  EXPECT_EQ(pool.peak_in_use(), 3);
  pool.reset_peak();
  EXPECT_EQ(pool.peak_in_use(), 1);
}

TEST_F(SlotPoolTest, BusyIntegralAccumulates) {
  SlotPool pool(sim_, "p", {.slots = 2});
  pool.acquire([] {});
  sim_.schedule(SimTime::millis(10), [&] { pool.release(); });
  sim_.run();
  EXPECT_EQ(pool.busy_integral(), 10000);
}

TEST_F(SlotPoolTest, UtilizationSince) {
  SlotPool pool(sim_, "p", {.slots = 2});
  const auto i0 = pool.busy_integral();
  const auto t0 = sim_.now();
  pool.acquire([] {});
  sim_.schedule(SimTime::millis(10), [&] { pool.release(); });
  sim_.run();
  sim_.run_until(SimTime::millis(20));
  // 1 of 2 slots for half the window = 0.25.
  EXPECT_NEAR(pool.utilization_since(i0, t0), 0.25, 1e-9);
}

TEST_F(SlotPoolTest, ClearWaitersDropsQueue) {
  SlotPool pool(sim_, "p", {.slots = 1});
  pool.acquire([] {});
  pool.acquire([] { FAIL() << "dropped waiter must not fire"; });
  pool.acquire([] { FAIL() << "dropped waiter must not fire"; });
  EXPECT_EQ(pool.clear_waiters(), 2u);
  pool.release();
  sim_.run();
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.rejected(), 2u);
}

TEST_F(SlotPoolTest, ReleaseGrantIsDeferredNotReentrant) {
  SlotPool pool(sim_, "p", {.slots = 1});
  bool in_release = false;
  bool grant_ran_during_release = false;
  pool.acquire([] {});
  pool.acquire([&] { grant_ran_during_release = in_release; });
  in_release = true;
  pool.release();
  in_release = false;
  sim_.run();
  EXPECT_FALSE(grant_ran_during_release);
}

}  // namespace
}  // namespace ah::sim
