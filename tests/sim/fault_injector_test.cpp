#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ah::sim {
namespace {

using common::SimTime;

TEST(FaultPlanTest, ParsesCrashAndRestart) {
  const auto plan = FaultPlan::parse("crash:3@120; restart:3@300");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_EQ(plan->events[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(plan->events[0].node, 3u);
  EXPECT_EQ(plan->events[0].at, SimTime::seconds(120.0));
  EXPECT_EQ(plan->events[1].kind, FaultEvent::Kind::kRestart);
  EXPECT_EQ(plan->events[1].at, SimTime::seconds(300.0));
}

TEST(FaultPlanTest, SlowWindowExpandsToStartEndPair) {
  const auto plan = FaultPlan::parse("slow:1@10-40x3.5");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_EQ(plan->events[0].kind, FaultEvent::Kind::kSlowStart);
  EXPECT_EQ(plan->events[0].node, 1u);
  EXPECT_EQ(plan->events[0].at, SimTime::seconds(10.0));
  EXPECT_DOUBLE_EQ(plan->events[0].magnitude, 3.5);
  EXPECT_EQ(plan->events[1].kind, FaultEvent::Kind::kSlowEnd);
  EXPECT_EQ(plan->events[1].at, SimTime::seconds(40.0));
}

TEST(FaultPlanTest, LinkWindowWithWildcardAndDelay) {
  const auto plan = FaultPlan::parse("link:*-2@400-460,drop=0.2,delay=5ms");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 2u);
  const FaultEvent& degrade = plan->events[0];
  EXPECT_EQ(degrade.kind, FaultEvent::Kind::kLinkDegrade);
  EXPECT_EQ(degrade.node, kFaultAnyNode);
  EXPECT_EQ(degrade.peer, 2u);
  EXPECT_DOUBLE_EQ(degrade.magnitude, 0.2);
  EXPECT_EQ(degrade.delay, SimTime::millis(5));
  EXPECT_EQ(plan->events[1].kind, FaultEvent::Kind::kLinkRestore);
  EXPECT_EQ(plan->events[1].at, SimTime::seconds(460.0));
}

TEST(FaultPlanTest, LinkWithoutDelayDefaultsToZero) {
  const auto plan = FaultPlan::parse("link:0-1@5-6,drop=1");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->events[0].delay, SimTime::zero());
  EXPECT_DOUBLE_EQ(plan->events[0].magnitude, 1.0);
}

TEST(FaultPlanTest, EmptyTextIsEmptyPlan) {
  const auto plan = FaultPlan::parse("  ;  ; ");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanTest, RejectsMalformedEntries) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("explode:1@10", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::parse("crash:1", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("crash:*@10", &error).has_value());  // no wildcard
  EXPECT_FALSE(FaultPlan::parse("slow:1@40-10x2", &error).has_value());  // t1 < t0
  EXPECT_FALSE(FaultPlan::parse("slow:1@10-40x0.5", &error).has_value());  // < 1
  EXPECT_FALSE(FaultPlan::parse("link:0-1@5-6,drop=1.5", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("crash:1@10 trailing", &error).has_value());
}

TEST(FaultInjectorTest, FiresEventsAtScheduledTimes) {
  Simulator sim;
  FaultInjector injector(sim);
  const auto plan = FaultPlan::parse("crash:0@10; restart:0@20");
  ASSERT_TRUE(plan.has_value());

  std::vector<std::pair<FaultEvent::Kind, double>> log;
  injector.arm(*plan, [&log, &sim](const FaultEvent& event) {
    log.emplace_back(event.kind, sim.now().as_seconds());
  });
  EXPECT_TRUE(injector.armed());

  sim.run_until(SimTime::seconds(15.0));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, FaultEvent::Kind::kCrash);
  EXPECT_DOUBLE_EQ(log[0].second, 10.0);

  sim.run_until(SimTime::seconds(30.0));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].first, FaultEvent::Kind::kRestart);
  EXPECT_DOUBLE_EQ(log[1].second, 20.0);
  EXPECT_EQ(injector.fired(), 2u);
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, DisarmCancelsPendingEvents) {
  Simulator sim;
  FaultInjector injector(sim);
  const auto plan = FaultPlan::parse("crash:0@10");
  ASSERT_TRUE(plan.has_value());
  int fired = 0;
  injector.arm(*plan, [&fired](const FaultEvent&) { ++fired; });
  injector.disarm();
  sim.run_until(SimTime::seconds(20.0));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(injector.fired(), 0u);
}

TEST(FaultInjectorTest, RearmReplacesPreviousPlan) {
  Simulator sim;
  FaultInjector injector(sim);
  int crashes = 0;
  int slows = 0;
  injector.arm(*FaultPlan::parse("crash:0@10"),
               [&crashes](const FaultEvent&) { ++crashes; });
  injector.arm(*FaultPlan::parse("slow:0@5-6x2"),
               [&slows](const FaultEvent&) { ++slows; });
  sim.run_until(SimTime::seconds(20.0));
  EXPECT_EQ(crashes, 0);  // first plan was disarmed
  EXPECT_EQ(slows, 2);    // start + end
}

}  // namespace
}  // namespace ah::sim
