#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace ah::sim {
namespace {

using common::SimTime;

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueueTest, PopInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(30), [&] { order.push_back(3); });
  q.push(SimTime::millis(10), [&] { order.push_back(1); });
  q.push(SimTime::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(SimTime::millis(7), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(SimTime::millis(5), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.next_time(), SimTime::millis(2));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(SimTime::millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceIsNoop) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelFiredEventIsNoop) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueueTest, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(1), [&] { order.push_back(1); });
  const EventId mid = q.push(SimTime::millis(2), [&] { order.push_back(2); });
  q.push(SimTime::millis(3), [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.live_size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelHeadAdjustsNextTime) {
  EventQueue q;
  const EventId head = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(9), [] {});
  q.cancel(head);
  EXPECT_EQ(q.next_time(), SimTime::millis(9));
}

TEST(EventQueueTest, LiveSizeTracksCancellations) {
  EventQueue q;
  const EventId a = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.live_size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.live_size(), 1u);
  q.pop();
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueueTest, IdsAreNeverZero) {
  // 0 is the caller-side "no event" sentinel (see UtilizationMonitor).
  EventQueue q;
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(q.push(SimTime::millis(i), [] {}), 0u);
  }
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId old_id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(old_id));
  // The slot is recycled, but the generation stamp differs.
  bool fired = false;
  const EventId new_id = q.push(SimTime::millis(2), [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.live_size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, FiredIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId fired_id = q.push(SimTime::millis(1), [] {});
  q.pop().fn();
  const EventId live_id = q.push(SimTime::millis(2), [] {});
  EXPECT_NE(fired_id, live_id);
  EXPECT_FALSE(q.cancel(fired_id));
  EXPECT_TRUE(q.cancel(live_id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelHeavyStressKeepsOrderAndCounts) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(SimTime::micros((i * 7919) % 1000), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(q.cancel(ids[i]));
  }
  EXPECT_EQ(q.live_size(), 500u);
  SimTime last = SimTime::zero();
  std::size_t popped = 0;
  while (!q.empty()) {
    const auto entry = q.pop();
    EXPECT_GE(entry.time, last);
    last = entry.time;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

TEST(EventQueueTest, EqualTimeTiesAcrossBucketBoundaries) {
  // Tie groups pinned where the wheel changes gear: the last one-tick
  // bucket of a level-0 block, the first tick of the next block, level-2
  // and level-3 territory, and both sides of the overflow horizon.  Every
  // group must still pop in push order after the cascades that reach it.
  EventQueue q;
  const std::int64_t times[] = {255,        256,           65'535,
                                65'536,     16'777'216,    (1LL << 32) - 1,
                                (1LL << 32), (1LL << 32) + 7};
  std::vector<std::pair<std::int64_t, int>> order;
  std::vector<std::pair<std::int64_t, int>> expected;
  int seq = 0;
  // Round-robin across the times so each tie group's pushes interleave
  // with every other group's.
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::int64_t t : times) {
      q.push(SimTime::micros(t),
             [&order, t, s = seq] { order.push_back({t, s}); });
      expected.push_back({t, seq});
      ++seq;
    }
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, CancelInOverflowBucket) {
  // 5000 s = 5e9 µs, beyond the wheel's 2^32 µs span: the event sits in
  // the overflow list, where cancellation is lazy (reaped when reached).
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  const EventId doomed = q.push(SimTime::seconds(5000), [&] { order.push_back(2); });
  q.push(SimTime::seconds(6000), [&] { order.push_back(3); });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.cancel(doomed));
  EXPECT_FALSE(q.cancel(doomed));
  EXPECT_EQ(q.size(), 2u);         // excluded the moment cancel() returns
  EXPECT_EQ(q.stored_size(), 3u);  // but physically reaped only later
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(q.stored_size(), 0u);
}

TEST(EventQueueTest, SizeStaysExactUnderLazyCancellation) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.push(SimTime::micros(1000 + i), [] {}));
  }
  EXPECT_EQ(q.size(), 64u);
  EXPECT_EQ(q.stored_size(), 64u);
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(q.cancel(ids[i]));
  }
  // size() is exact immediately; stored_size() still carries the
  // cancelled-but-unreaped debt.
  EXPECT_EQ(q.size(), 32u);
  EXPECT_EQ(q.stored_size(), 64u);
  std::size_t popped = 0;
  while (!q.empty()) {
    q.pop();
    ++popped;
    EXPECT_EQ(q.size(), 32u - popped);
  }
  EXPECT_EQ(popped, 32u);
  EXPECT_EQ(q.stored_size(), 0u);
}

TEST(EventQueueTest, RolloverCascadeStressMatchesReferenceModel) {
  // Randomized interleaving of push/cancel/pop against an exact reference
  // of the old binary heap's order: a set of (time, global push sequence)
  // pairs.  The delta mixture deliberately hits one-tick ties, level
  // boundaries, deep levels and the overflow horizon, and the final drain
  // walks the cursor across several 2^32 µs overflow epochs.
  EventQueue q;
  common::Rng rng(0xc0ffee);
  std::set<std::pair<std::int64_t, int>> ref;
  struct Pushed {
    EventId id;
    std::int64_t time;
    int seq;
  };
  std::vector<Pushed> pushed;
  std::vector<int> popped;
  int seq = 0;
  std::int64_t now = 0;
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t r = rng();
      std::int64_t delta = 0;
      switch (r % 5) {
        case 0: delta = static_cast<std::int64_t>((r >> 8) % 4); break;
        case 1: delta = 250 + static_cast<std::int64_t>((r >> 8) % 12); break;
        case 2: delta = static_cast<std::int64_t>((r >> 8) % (1u << 20)); break;
        case 3:
          delta = (1LL << 24) + static_cast<std::int64_t>((r >> 8) % 1024);
          break;
        case 4:
          delta = (1LL << 32) + static_cast<std::int64_t>((r >> 8) % 1000);
          break;
      }
      const std::int64_t t = now + delta;
      const int s = seq++;
      const EventId id =
          q.push(SimTime::micros(t), [&popped, s] { popped.push_back(s); });
      ref.insert({t, s});
      pushed.push_back(Pushed{id, t, s});
    }
    // Cancel a couple of arbitrary earlier pushes; a stale id (already
    // popped or already cancelled) must refuse, a live one must agree
    // with the reference.
    for (int i = 0; i < 2; ++i) {
      const Pushed& victim = pushed[rng() % pushed.size()];
      if (q.cancel(victim.id)) {
        EXPECT_EQ(ref.erase({victim.time, victim.seq}), 1u);
      } else {
        EXPECT_EQ(ref.count({victim.time, victim.seq}), 0u);
      }
    }
    for (int i = 0; i < 6 && !q.empty(); ++i) {
      ASSERT_FALSE(ref.empty());
      const auto expect = *ref.begin();
      ref.erase(ref.begin());
      auto entry = q.pop();
      ASSERT_EQ(entry.time.as_micros(), expect.first);
      entry.fn();
      ASSERT_EQ(popped.back(), expect.second);
      now = expect.first;
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  while (!q.empty()) {
    ASSERT_FALSE(ref.empty());
    const auto expect = *ref.begin();
    ref.erase(ref.begin());
    auto entry = q.pop();
    ASSERT_EQ(entry.time.as_micros(), expect.first);
    entry.fn();
    ASSERT_EQ(popped.back(), expect.second);
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(q.stored_size(), 0u);
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  // Insert times in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const int t = (i * 7919) % 1000;
    q.push(SimTime::micros(t), [] {});
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    const auto entry = q.pop();
    EXPECT_GE(entry.time, last);
    last = entry.time;
  }
}

}  // namespace
}  // namespace ah::sim
