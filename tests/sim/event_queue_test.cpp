#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ah::sim {
namespace {

using common::SimTime;

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueueTest, PopInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(30), [&] { order.push_back(3); });
  q.push(SimTime::millis(10), [&] { order.push_back(1); });
  q.push(SimTime::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(SimTime::millis(7), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(SimTime::millis(5), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.next_time(), SimTime::millis(2));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(SimTime::millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceIsNoop) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelFiredEventIsNoop) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueueTest, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(1), [&] { order.push_back(1); });
  const EventId mid = q.push(SimTime::millis(2), [&] { order.push_back(2); });
  q.push(SimTime::millis(3), [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.live_size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelHeadAdjustsNextTime) {
  EventQueue q;
  const EventId head = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(9), [] {});
  q.cancel(head);
  EXPECT_EQ(q.next_time(), SimTime::millis(9));
}

TEST(EventQueueTest, LiveSizeTracksCancellations) {
  EventQueue q;
  const EventId a = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.live_size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.live_size(), 1u);
  q.pop();
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueueTest, IdsAreNeverZero) {
  // 0 is the caller-side "no event" sentinel (see UtilizationMonitor).
  EventQueue q;
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(q.push(SimTime::millis(i), [] {}), 0u);
  }
}

TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId old_id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(old_id));
  // The slot is recycled, but the generation stamp differs.
  bool fired = false;
  const EventId new_id = q.push(SimTime::millis(2), [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.live_size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, FiredIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId fired_id = q.push(SimTime::millis(1), [] {});
  q.pop().fn();
  const EventId live_id = q.push(SimTime::millis(2), [] {});
  EXPECT_NE(fired_id, live_id);
  EXPECT_FALSE(q.cancel(fired_id));
  EXPECT_TRUE(q.cancel(live_id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelHeavyStressKeepsOrderAndCounts) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(SimTime::micros((i * 7919) % 1000), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(q.cancel(ids[i]));
  }
  EXPECT_EQ(q.live_size(), 500u);
  SimTime last = SimTime::zero();
  std::size_t popped = 0;
  while (!q.empty()) {
    const auto entry = q.pop();
    EXPECT_GE(entry.time, last);
    last = entry.time;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  // Insert times in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const int t = (i * 7919) % 1000;
    q.push(SimTime::micros(t), [] {});
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    const auto entry = q.pop();
    EXPECT_GE(entry.time, last);
    last = entry.time;
  }
}

}  // namespace
}  // namespace ah::sim
