#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ah::sim {
namespace {

using common::SimTime;

class ResourceTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(ResourceTest, SingleJobCompletesAfterDemand) {
  Resource r(sim_, "r", {.servers = 1});
  SimTime done_at = SimTime::zero();
  r.submit(SimTime::millis(10), [&] { done_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done_at, SimTime::millis(10));
  EXPECT_EQ(r.completed(), 1u);
}

TEST_F(ResourceTest, FifoQueueing) {
  Resource r(sim_, "r", {.servers = 1});
  std::vector<int> order;
  r.submit(SimTime::millis(10), [&] { order.push_back(1); });
  r.submit(SimTime::millis(5), [&] { order.push_back(2); });
  r.submit(SimTime::millis(1), [&] { order.push_back(3); });
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  // Sequential service: 10, then +5, then +1.
  EXPECT_EQ(sim_.now(), SimTime::millis(16));
}

TEST_F(ResourceTest, MultipleServersRunConcurrently) {
  Resource r(sim_, "r", {.servers = 2});
  int completed = 0;
  r.submit(SimTime::millis(10), [&] { ++completed; });
  r.submit(SimTime::millis(10), [&] { ++completed; });
  sim_.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(sim_.now(), SimTime::millis(10));  // parallel, not 20
}

TEST_F(ResourceTest, QueueCapacityRejects) {
  Resource r(sim_, "r", {.servers = 1, .queue_capacity = 1});
  EXPECT_TRUE(r.submit(SimTime::millis(10), {}));   // in service
  EXPECT_TRUE(r.submit(SimTime::millis(10), {}));   // queued
  EXPECT_FALSE(r.submit(SimTime::millis(10), {}));  // rejected
  EXPECT_EQ(r.rejected(), 1u);
  sim_.run();
  EXPECT_EQ(r.completed(), 2u);
}

TEST_F(ResourceTest, SlowdownScalesServiceTime) {
  Resource r(sim_, "r", {.servers = 1, .queue_capacity = 100, .slowdown = 2.0});
  SimTime done_at = SimTime::zero();
  r.submit(SimTime::millis(10), [&] { done_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done_at, SimTime::millis(20));
}

TEST_F(ResourceTest, SlowdownChangeAffectsNewJobsOnly) {
  Resource r(sim_, "r", {.servers = 1});
  std::vector<SimTime> done;
  r.submit(SimTime::millis(10), [&] { done.push_back(sim_.now()); });
  r.set_slowdown(3.0);
  r.submit(SimTime::millis(10), [&] { done.push_back(sim_.now()); });
  sim_.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], SimTime::millis(10));  // started before the change
  EXPECT_EQ(done[1], SimTime::millis(40));  // 10 + 10*3
}

TEST_F(ResourceTest, GrowServersStartsQueuedJobs) {
  Resource r(sim_, "r", {.servers = 1});
  int completed = 0;
  r.submit(SimTime::millis(10), [&] { ++completed; });
  r.submit(SimTime::millis(10), [&] { ++completed; });
  r.set_servers(2);  // second job starts immediately
  sim_.run();
  EXPECT_EQ(sim_.now(), SimTime::millis(10));
  EXPECT_EQ(completed, 2);
}

TEST_F(ResourceTest, ShrinkLetsRunningJobsFinish) {
  Resource r(sim_, "r", {.servers = 2});
  int completed = 0;
  r.submit(SimTime::millis(10), [&] { ++completed; });
  r.submit(SimTime::millis(10), [&] { ++completed; });
  r.set_servers(1);
  EXPECT_EQ(r.busy(), 2);  // both still in service
  r.submit(SimTime::millis(10), [&] { ++completed; });
  sim_.run();
  EXPECT_EQ(completed, 3);
  // Third job waits until both finish (t=10), runs on the 1 remaining
  // server until t=20.
  EXPECT_EQ(sim_.now(), SimTime::millis(20));
}

TEST_F(ResourceTest, BusyIntegralTracksUtilization) {
  Resource r(sim_, "r", {.servers = 2});
  r.submit(SimTime::millis(10), {});
  r.submit(SimTime::millis(10), {});
  sim_.run_until(SimTime::millis(20));
  // 2 servers busy for 10ms each = 20'000 server-us.
  EXPECT_EQ(r.busy_integral(), 20000);
}

TEST_F(ResourceTest, UtilizationSinceWindow) {
  Resource r(sim_, "r", {.servers = 1});
  const auto integral0 = r.busy_integral();
  const auto t0 = sim_.now();
  r.submit(SimTime::millis(5), {});
  sim_.run_until(SimTime::millis(10));
  EXPECT_NEAR(r.utilization_since(integral0, t0), 0.5, 1e-9);
}

TEST_F(ResourceTest, UtilizationZeroWindow) {
  Resource r(sim_, "r", {.servers = 1});
  EXPECT_EQ(r.utilization_since(0, sim_.now()), 0.0);
}

TEST_F(ResourceTest, QueueIntegralAccumulates) {
  Resource r(sim_, "r", {.servers = 1});
  r.submit(SimTime::millis(10), {});
  r.submit(SimTime::millis(10), {});  // queued for 10ms
  sim_.run();
  EXPECT_EQ(r.queue_integral(), 10000);
}

TEST_F(ResourceTest, ClearQueueDropsWaiters) {
  Resource r(sim_, "r", {.servers = 1});
  int completed = 0;
  r.submit(SimTime::millis(10), [&] { ++completed; });
  r.submit(SimTime::millis(10), [&] { ++completed; });
  r.submit(SimTime::millis(10), [&] { ++completed; });
  EXPECT_EQ(r.clear_queue(), 2u);
  sim_.run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(r.rejected(), 2u);
}

TEST_F(ResourceTest, EmptyCompletionAllowed) {
  Resource r(sim_, "r", {.servers = 1});
  r.submit(SimTime::millis(1), {});
  sim_.run();
  EXPECT_EQ(r.completed(), 1u);
}

TEST_F(ResourceTest, SubmitJobIdsAreMonotoneAndZeroMeansRejected) {
  Resource r(sim_, "r", {.servers = 1, .queue_capacity = 1});
  const Resource::JobId a = r.submit_job(SimTime::millis(1), {}, {});
  const Resource::JobId b = r.submit_job(SimTime::millis(1), {}, {});
  const Resource::JobId c = r.submit_job(SimTime::millis(1), {}, {});
  EXPECT_NE(a, 0u);
  EXPECT_LT(a, b);
  EXPECT_EQ(c, 0u);  // waiting line full: rejected
  EXPECT_EQ(r.rejected(), 1u);
}

TEST_F(ResourceTest, OnStartFiresAtServiceStartInstant) {
  Resource r(sim_, "r", {.servers = 1});
  SimTime first_start = SimTime::millis(-1);
  SimTime second_start = SimTime::millis(-1);
  r.submit_job(SimTime::millis(10), [&] { first_start = sim_.now(); }, {});
  // The idle server starts the job inside submit_job itself.
  EXPECT_EQ(first_start, SimTime::zero());
  r.submit_job(SimTime::millis(5), [&] { second_start = sim_.now(); }, {});
  EXPECT_EQ(second_start, SimTime::millis(-1));  // still queued
  sim_.run();
  EXPECT_EQ(second_start, SimTime::millis(10));
}

TEST_F(ResourceTest, OnStartOrdersAheadOfOwnCompletion) {
  // Events scheduled from the start hook at the job's own completion time
  // are pushed earlier, so they pop first.
  Resource r(sim_, "r", {.servers = 1});
  std::vector<int> order;
  r.submit_job(
      SimTime::millis(10),
      [&] { sim_.schedule(SimTime::millis(10), [&] { order.push_back(1); }); },
      [&] { order.push_back(2); });
  sim_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(ResourceTest, ExtendQueuedTailFoldsDemand) {
  Resource r(sim_, "r", {.servers = 1});
  SimTime done_at = SimTime::zero();
  r.submit(SimTime::millis(10), {});  // in service
  const Resource::JobId tail =
      r.submit_job(SimTime::millis(5), {}, [&] { done_at = sim_.now(); });
  EXPECT_TRUE(r.extend_queued_tail(tail, SimTime::millis(3)));
  sim_.run();
  // The merged job serves for the summed demand: 10 + (5 + 3).
  EXPECT_EQ(done_at, SimTime::millis(18));
  EXPECT_EQ(r.completed(), 2u);
}

TEST_F(ResourceTest, ExtendRefusesInServiceNonTailAndSentinel) {
  Resource r(sim_, "r", {.servers = 1, .queue_capacity = 4});
  const Resource::JobId head = r.submit_job(SimTime::millis(10), {}, {});
  EXPECT_FALSE(r.extend_queued_tail(head, SimTime::millis(1)));  // in service
  const Resource::JobId mid = r.submit_job(SimTime::millis(10), {}, {});
  const Resource::JobId tail = r.submit_job(SimTime::millis(10), {}, {});
  EXPECT_FALSE(r.extend_queued_tail(mid, SimTime::millis(1)));  // not the tail
  EXPECT_FALSE(r.extend_queued_tail(0, SimTime::millis(1)));    // sentinel
  EXPECT_TRUE(r.extend_queued_tail(tail, SimTime::millis(1)));
}

TEST_F(ResourceTest, ExtendRefusesWhenQueueAtCapacity) {
  // A fresh arrival would be rejected, so folding into the tail must be
  // refused too — batching cannot smuggle work past admission control.
  Resource r(sim_, "r", {.servers = 1, .queue_capacity = 1});
  r.submit(SimTime::millis(10), {});  // in service
  const Resource::JobId tail = r.submit_job(SimTime::millis(10), {}, {});
  EXPECT_FALSE(r.extend_queued_tail(tail, SimTime::millis(1)));
}

TEST_F(ResourceTest, ZeroDemandJobCompletesImmediately) {
  Resource r(sim_, "r", {.servers = 1});
  bool done = false;
  r.submit(SimTime::zero(), [&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim_.now(), SimTime::zero());
}

}  // namespace
}  // namespace ah::sim
