// Scenario grammar: arrival-phase math, correlated-failure expansion, mix
// drift, the dialect split against FaultPlan, and one test per hardening
// rejection (all with line/column diagnostics).
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ah::sim {
namespace {

using common::SimTime;

// -- Arrival-phase math ----------------------------------------------------

ArrivalPhase flash_phase() {
  ArrivalPhase phase;
  phase.kind = ArrivalPhase::Kind::kFlash;
  phase.t0 = SimTime::seconds(100.0);
  phase.t1 = SimTime::seconds(300.0);
  phase.magnitude = 3.0;
  return phase;
}

TEST(ArrivalPhaseTest, FlashIsTriangular) {
  const ArrivalPhase phase = flash_phase();
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(100.0)), 1.0);
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(150.0)), 2.0);  // halfway up
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(200.0)), 3.0);  // peak
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(250.0)), 2.0);  // halfway down
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(300.0)), 1.0);  // window edge
}

TEST(ArrivalPhaseTest, IdentityOutsideWindow) {
  const ArrivalPhase phase = flash_phase();
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::zero()), 1.0);
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(99.9)), 1.0);
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(301.0)), 1.0);
}

TEST(ArrivalPhaseTest, RampHoldsAfterWindow) {
  ArrivalPhase phase;
  phase.kind = ArrivalPhase::Kind::kRamp;
  phase.t0 = SimTime::seconds(10.0);
  phase.t1 = SimTime::seconds(20.0);
  phase.magnitude = 2.0;
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(10.0)), 1.0);
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(15.0)), 1.5);
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(20.0)), 2.0);  // holds ...
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(500.0)), 2.0);  // ... forever
}

TEST(ArrivalPhaseTest, DiurnalOscillatesInsideWindow) {
  ArrivalPhase phase;
  phase.kind = ArrivalPhase::Kind::kDiurnal;
  phase.t0 = SimTime::seconds(0.0);
  phase.t1 = SimTime::seconds(100.0);
  phase.magnitude = 0.5;
  phase.period = SimTime::seconds(40.0);
  EXPECT_NEAR(phase.factor(SimTime::seconds(0.0)), 1.0, 1e-12);
  EXPECT_NEAR(phase.factor(SimTime::seconds(10.0)), 1.5, 1e-12);  // sin peak
  EXPECT_NEAR(phase.factor(SimTime::seconds(30.0)), 0.5, 1e-12);  // trough
  EXPECT_DOUBLE_EQ(phase.factor(SimTime::seconds(100.0)), 1.0);  // outside
}

TEST(ArrivalModulationTest, FactorsMultiplyAndEmptyIsIdentity) {
  ArrivalModulation modulation;
  EXPECT_TRUE(modulation.empty());
  EXPECT_DOUBLE_EQ(modulation.factor(SimTime::seconds(200.0)), 1.0);
  modulation.phases.push_back(flash_phase());
  modulation.phases.push_back(flash_phase());
  // Two identical flashes compose multiplicatively: 3 * 3 at the peak.
  EXPECT_DOUBLE_EQ(modulation.factor(SimTime::seconds(200.0)), 9.0);
}

// -- Parsing the scenario dialect ------------------------------------------

TEST(ScenarioPlanTest, ParsesArrivalPhasesAndMix) {
  const auto plan = ScenarioPlan::parse(
      "ramp:2.5@0-60; diurnal:0.3@10-500/120; flash:4@100-200; "
      "mix:ordering@150");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->arrival.phases.size(), 3u);
  EXPECT_EQ(plan->arrival.phases[0].kind, ArrivalPhase::Kind::kRamp);
  EXPECT_DOUBLE_EQ(plan->arrival.phases[0].magnitude, 2.5);
  EXPECT_EQ(plan->arrival.phases[1].kind, ArrivalPhase::Kind::kDiurnal);
  EXPECT_EQ(plan->arrival.phases[1].period, SimTime::seconds(120.0));
  EXPECT_EQ(plan->arrival.phases[2].kind, ArrivalPhase::Kind::kFlash);
  EXPECT_EQ(plan->arrival.phases[2].t0, SimTime::seconds(100.0));
  ASSERT_EQ(plan->mix_changes.size(), 1u);
  EXPECT_EQ(plan->mix_changes[0].mix, "ordering");
  EXPECT_EQ(plan->mix_changes[0].at, SimTime::seconds(150.0));
  EXPECT_TRUE(plan->faults.empty());
}

TEST(ScenarioPlanTest, RackExpandsToCrashRestartPerMember) {
  const auto plan = ScenarioPlan::parse("rack:3+5@100-200");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->faults.events.size(), 4u);
  EXPECT_EQ(plan->faults.events[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(plan->faults.events[0].node, 3u);
  EXPECT_EQ(plan->faults.events[0].at, SimTime::seconds(100.0));
  EXPECT_EQ(plan->faults.events[1].kind, FaultEvent::Kind::kRestart);
  EXPECT_EQ(plan->faults.events[1].node, 3u);
  EXPECT_EQ(plan->faults.events[1].at, SimTime::seconds(200.0));
  EXPECT_EQ(plan->faults.events[2].node, 5u);
  EXPECT_EQ(plan->faults.events[3].node, 5u);
}

TEST(ScenarioPlanTest, SwitchExpandsToBothLinkDirections) {
  const auto plan = ScenarioPlan::parse("switch:7@10-20,drop=0.4,delay=3ms");
  ASSERT_TRUE(plan.has_value());
  // One member: degrade+restore for 7->* and for *->7.
  ASSERT_EQ(plan->faults.events.size(), 4u);
  const FaultEvent& out = plan->faults.events[0];
  EXPECT_EQ(out.kind, FaultEvent::Kind::kLinkDegrade);
  EXPECT_EQ(out.node, 7u);
  EXPECT_EQ(out.peer, kFaultAnyNode);
  EXPECT_DOUBLE_EQ(out.magnitude, 0.4);
  EXPECT_EQ(out.delay, SimTime::millis(3));
  const FaultEvent& in = plan->faults.events[2];
  EXPECT_EQ(in.kind, FaultEvent::Kind::kLinkDegrade);
  EXPECT_EQ(in.node, kFaultAnyNode);
  EXPECT_EQ(in.peer, 7u);
  EXPECT_EQ(plan->faults.events[1].kind, FaultEvent::Kind::kLinkRestore);
  EXPECT_EQ(plan->faults.events[1].at, SimTime::seconds(20.0));
}

TEST(ScenarioPlanTest, FaultVerbsStillWorkInScenarioDialect) {
  const auto plan =
      ScenarioPlan::parse("crash:1@10; slow:2@20-30x2; restart:1@40");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->faults.events.size(), 4u);
  EXPECT_TRUE(plan->arrival.empty());
}

TEST(ScenarioPlanTest, FaultPlanRejectsScenarioVerbs) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("flash:3@10-20", &error).has_value());
  EXPECT_NE(error.find("scenario verb"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse("rack:1+2@10-20", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("mix:ordering@10", &error).has_value());
}

// -- Hardening rejections (one per rule) -----------------------------------

std::string reject(std::string_view text) {
  std::string error;
  EXPECT_FALSE(ScenarioPlan::parse(text, &error).has_value()) << text;
  EXPECT_FALSE(error.empty()) << text;
  return error;
}

TEST(ScenarioHardeningTest, RejectsOutOfOrderStartTimes) {
  const std::string error = reject("crash:1@100; restart:1@200; crash:2@50");
  EXPECT_NE(error.find("out-of-order"), std::string::npos);
  EXPECT_NE(error.find("crash:2@50"), std::string::npos);
}

TEST(ScenarioHardeningTest, RejectsDoubleCrash) {
  // Entry-ordered by start time, but node 1 crashes twice with no restart
  // in between — only the time-ordered sweep can see that.
  const std::string error = reject("crash:1@10; crash:1@20; restart:1@30");
  EXPECT_NE(error.find("crashed twice"), std::string::npos);
}

TEST(ScenarioHardeningTest, RejectsRestartOfHealthyNode) {
  const std::string error = reject("crash:1@10; restart:2@20");
  EXPECT_NE(error.find("not crashed"), std::string::npos);
}

TEST(ScenarioHardeningTest, RejectsOverlappingSlowWindows) {
  const std::string error = reject("slow:4@10-50x2; slow:4@30-60x3");
  EXPECT_NE(error.find("overlapping slow windows"), std::string::npos);
  // Distinct nodes may overlap freely.
  EXPECT_TRUE(ScenarioPlan::parse("slow:4@10-50x2; slow:5@30-60x3")
                  .has_value());
}

TEST(ScenarioHardeningTest, RejectsDuplicateMemberInList) {
  const std::string error = reject("rack:3+4+3@10-20");
  EXPECT_NE(error.find("duplicate node id"), std::string::npos);
}

TEST(ScenarioHardeningTest, SweepCatchesRackOverlappingSoloCrash) {
  // Node 3 is in the rack AND crashed individually inside the window.
  const std::string error = reject("rack:3+4@10-100; crash:3@50");
  EXPECT_NE(error.find("crashed twice"), std::string::npos);
}

TEST(ScenarioHardeningTest, RejectsUnknownVerbWithPosition) {
  const std::string error = reject("explode:1@10");
  EXPECT_NE(error.find("unknown keyword"), std::string::npos);
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("col 1"), std::string::npos);
}

TEST(ScenarioHardeningTest, DiagnosticsPointAtTheOffendingLine) {
  const std::string error =
      reject("crash:1@10;\nrestart:1@20;\nbadverb:2@30");
  EXPECT_NE(error.find("'badverb:2@30'"), std::string::npos);
  EXPECT_NE(error.find("line 3"), std::string::npos);
  EXPECT_NE(error.find("col 1"), std::string::npos);
}

TEST(ScenarioHardeningTest, RejectsMalformedScenarioEntries) {
  reject("flash:0.5@10-20");        // peak < 1
  reject("flash:3@20-20");          // empty window
  reject("ramp:0@10-20");           // factor must be > 0
  reject("diurnal:1.5@10-20/30");   // amplitude >= 1
  reject("diurnal:0.5@10-20/0");    // zero period
  reject("mix:9lives@10");          // identifier cannot start with a digit
  reject("rack:@10-20");            // empty member list
  reject("switch:1@10-20");         // missing drop=
  reject("rack:1+2@10-20 junk");    // trailing garbage
}

}  // namespace
}  // namespace ah::sim
