// Feedback-controlled admission: convergence of the proportional loop,
// fuzzy deadband, the deterministic hash-based admit decision, and the
// controller's safety rails (min_admit floor, min_samples gate).
#include "ctrl/admission_controller.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/simulator.hpp"

namespace ah::ctrl {
namespace {

using common::SimTime;

AdmissionController::Config test_config() {
  AdmissionController::Config config;
  config.target_p95 = SimTime::millis(500);
  config.period = SimTime::seconds(1.0);
  return config;
}

/// Feeds `samples` observations of `latency` and advances past tick `k`.
void feed_window(sim::Simulator& sim, AdmissionController& controller,
                 std::uint64_t k, SimTime latency, int samples = 32) {
  for (int i = 0; i < samples; ++i) controller.observe(latency);
  sim.run_until(SimTime::seconds(static_cast<double>(k)) + SimTime::millis(1));
}

TEST(AdmissionControllerTest, ShedsUnderSustainedBreachAndRecovers) {
  sim::Simulator sim;
  AdmissionController controller(sim, test_config());
  controller.start();
  EXPECT_DOUBLE_EQ(controller.admit_fraction(), 1.0);

  // p95 at 4x the target: every tick cuts by the full max_step.
  for (std::uint64_t k = 1; k <= 8; ++k) {
    feed_window(sim, controller, k, SimTime::millis(2000));
  }
  EXPECT_LT(controller.admit_fraction(), 0.2);
  EXPECT_GT(controller.adjustments(), 4u);

  // Latency falls well below target: the loop walks back up to wide open.
  for (std::uint64_t k = 9; k <= 20; ++k) {
    feed_window(sim, controller, k, SimTime::millis(50));
  }
  EXPECT_DOUBLE_EQ(controller.admit_fraction(), 1.0);
  controller.stop();
  EXPECT_FALSE(controller.running());
}

TEST(AdmissionControllerTest, FractionNeverDropsBelowFloor) {
  sim::Simulator sim;
  AdmissionController controller(sim, test_config());
  controller.start();
  for (std::uint64_t k = 1; k <= 30; ++k) {
    feed_window(sim, controller, k, SimTime::seconds(30.0));
  }
  EXPECT_DOUBLE_EQ(controller.admit_fraction(),
                   controller.config().min_admit);
  // Even at the floor, a sliver of traffic still reaches the backend (the
  // controller must keep measuring it to ever recover).
  int admitted = 0;
  for (std::uint64_t id = 0; id < 4096; ++id) {
    if (controller.admit(id)) ++admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 4096 / 4);
}

TEST(AdmissionControllerTest, FuzzyDeadbandHoldsSteady) {
  sim::Simulator sim;
  AdmissionController controller(sim, test_config());
  controller.start();
  // Within 10% of target: inside the deadband, no actuation at all.
  for (std::uint64_t k = 1; k <= 5; ++k) {
    feed_window(sim, controller, k, SimTime::millis(520));
  }
  EXPECT_EQ(controller.adjustments(), 0u);
  EXPECT_DOUBLE_EQ(controller.admit_fraction(), 1.0);
}

TEST(AdmissionControllerTest, ThinWindowsAreIgnored) {
  sim::Simulator sim;
  AdmissionController controller(sim, test_config());
  controller.start();
  // Fewer than min_samples observations: the p95 is noise, don't act.
  for (std::uint64_t k = 1; k <= 5; ++k) {
    feed_window(sim, controller, k, SimTime::seconds(10.0), /*samples=*/4);
  }
  EXPECT_GT(controller.ticks(), 0u);
  EXPECT_EQ(controller.adjustments(), 0u);
  EXPECT_DOUBLE_EQ(controller.admit_fraction(), 1.0);
}

TEST(AdmissionControllerTest, AdmitDecisionIsDeterministicPerRequestId) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  AdmissionController a(sim_a, test_config());
  AdmissionController b(sim_b, test_config());
  a.start();
  b.start();
  // Drive both to the same partial fraction through identical feeds.
  for (std::uint64_t k = 1; k <= 3; ++k) {
    feed_window(sim_a, a, k, SimTime::millis(2000));
    feed_window(sim_b, b, k, SimTime::millis(2000));
  }
  ASSERT_DOUBLE_EQ(a.admit_fraction(), b.admit_fraction());
  ASSERT_LT(a.admit_fraction(), 1.0);

  std::set<std::uint64_t> admitted_a;
  std::set<std::uint64_t> admitted_b;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    if (a.admit(id)) admitted_a.insert(id);
    if (b.admit(id)) admitted_b.insert(id);
  }
  // The decision hashes (request_id, salt): same subset on both
  // controllers, no RNG state involved, and roughly the right size.
  EXPECT_EQ(admitted_a, admitted_b);
  const double fraction = a.admit_fraction();
  EXPECT_NEAR(static_cast<double>(admitted_a.size()) / 10000.0, fraction,
              0.05);
}

TEST(AdmissionControllerTest, WideOpenAdmitsEverything) {
  sim::Simulator sim;
  AdmissionController controller(sim, test_config());
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_TRUE(controller.admit(id));
  }
  EXPECT_EQ(controller.admitted(), 1000u);
  EXPECT_EQ(controller.shed(), 0u);
}

TEST(AdmissionControllerTest, ChangeObserverSeesEveryActuation) {
  sim::Simulator sim;
  AdmissionController controller(sim, test_config());
  std::vector<double> fractions;
  controller.set_change_observer(
      [&fractions](double fraction) { fractions.push_back(fraction); });
  controller.start();
  for (std::uint64_t k = 1; k <= 4; ++k) {
    feed_window(sim, controller, k, SimTime::millis(2000));
  }
  ASSERT_EQ(fractions.size(), controller.adjustments());
  ASSERT_GE(fractions.size(), 2u);
  EXPECT_LT(fractions.back(), fractions.front());
  EXPECT_DOUBLE_EQ(fractions.back(), controller.admit_fraction());
}

TEST(AdmissionControllerTest, SetConfigKeepsFractionButRefloors) {
  sim::Simulator sim;
  AdmissionController controller(sim, test_config());
  controller.start();
  for (std::uint64_t k = 1; k <= 30; ++k) {
    feed_window(sim, controller, k, SimTime::seconds(30.0));
  }
  ASSERT_DOUBLE_EQ(controller.admit_fraction(), 0.05);  // default floor
  AdmissionController::Config raised = test_config();
  raised.min_admit = 0.25;
  controller.set_config(raised);
  EXPECT_DOUBLE_EQ(controller.admit_fraction(), 0.25);
}

}  // namespace
}  // namespace ah::ctrl
