// Test-only helper for threading wide continuations through EventFn.
//
// sim::EventFn requires its capture to fit the 48-byte inline buffer
// (SboPolicy::kRequired), and a ResponseFn/DbResultFn is wider than that on
// its own.  Production code parks per-request state in pooled call structs;
// test stubs do not need a pool, so they park the continuation behind a
// unique_ptr and capture the single owning pointer instead:
//
//   sim.schedule(latency, [done = park(std::move(done))]() mutable {
//     (*done)(Response{...});
//   });
//
// The allocation is deliberate and test-only.
#pragma once

#include <memory>
#include <utility>

namespace ah::test {

template <typename Fn>
[[nodiscard]] std::unique_ptr<Fn> park(Fn fn) {
  return std::make_unique<Fn>(std::move(fn));
}

}  // namespace ah::test
