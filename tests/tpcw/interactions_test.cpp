#include "tpcw/interactions.hpp"

#include <gtest/gtest.h>

namespace ah::tpcw {
namespace {

TEST(InteractionsTest, CountIs14) {
  EXPECT_EQ(kInteractionCount, 14);
}

TEST(InteractionsTest, AllNamed) {
  for (int i = 0; i < kInteractionCount; ++i) {
    EXPECT_NE(interaction_name(static_cast<Interaction>(i)), "?");
  }
}

TEST(InteractionsTest, BrowseClassificationMatchesSpec) {
  // TPC-W Browse category: Home, New Products, Best Sellers, Product
  // Detail, Search Request, Search Results.  The rest are Order.
  EXPECT_TRUE(is_browse(Interaction::kHome));
  EXPECT_TRUE(is_browse(Interaction::kNewProducts));
  EXPECT_TRUE(is_browse(Interaction::kBestSellers));
  EXPECT_TRUE(is_browse(Interaction::kProductDetail));
  EXPECT_TRUE(is_browse(Interaction::kSearchRequest));
  EXPECT_TRUE(is_browse(Interaction::kSearchResults));
  EXPECT_FALSE(is_browse(Interaction::kShoppingCart));
  EXPECT_FALSE(is_browse(Interaction::kCustomerRegistration));
  EXPECT_FALSE(is_browse(Interaction::kBuyRequest));
  EXPECT_FALSE(is_browse(Interaction::kBuyConfirm));
  EXPECT_FALSE(is_browse(Interaction::kOrderInquiry));
  EXPECT_FALSE(is_browse(Interaction::kOrderDisplay));
  EXPECT_FALSE(is_browse(Interaction::kAdminRequest));
  EXPECT_FALSE(is_browse(Interaction::kAdminConfirm));
}

TEST(InteractionsTest, ExactlySixBrowseInteractions) {
  int browse = 0;
  for (int i = 0; i < kInteractionCount; ++i) {
    if (is_browse(static_cast<Interaction>(i))) ++browse;
  }
  EXPECT_EQ(browse, 6);
}

TEST(InteractionsTest, ProfilesHavePositiveDemands) {
  for (int i = 0; i < kInteractionCount; ++i) {
    const auto& p = profile_for(static_cast<Interaction>(i));
    EXPECT_GT(p.response_bytes, 0) << p.name;
    EXPECT_GT(p.proxy_cpu.as_micros(), 0) << p.name;
    EXPECT_GT(p.app_cpu.as_micros(), 0) << p.name;
    for (int q : p.queries) EXPECT_GE(q, 0) << p.name;
  }
}

TEST(InteractionsTest, OrderPagesWriteToTheDatabase) {
  EXPECT_TRUE(profile_for(Interaction::kBuyConfirm).has_writes());
  EXPECT_TRUE(profile_for(Interaction::kShoppingCart).has_writes());
  EXPECT_TRUE(profile_for(Interaction::kBuyRequest).has_writes());
  EXPECT_FALSE(profile_for(Interaction::kHome).has_writes());
  EXPECT_FALSE(profile_for(Interaction::kSearchRequest).has_writes());
}

TEST(InteractionsTest, BestSellersIsJoinHeavy) {
  const auto& p = profile_for(Interaction::kBestSellers);
  EXPECT_GE(p.queries[static_cast<int>(webstack::QueryClass::kSelectJoin)], 2);
}

TEST(InteractionsTest, StaticFormsNeedNoDatabase) {
  EXPECT_FALSE(profile_for(Interaction::kSearchRequest).needs_db());
  EXPECT_FALSE(profile_for(Interaction::kCustomerRegistration).needs_db());
  EXPECT_FALSE(profile_for(Interaction::kOrderInquiry).needs_db());
}

TEST(InteractionsTest, CacheabilitySplit) {
  EXPECT_TRUE(profile_for(Interaction::kHome).cacheable);
  EXPECT_TRUE(profile_for(Interaction::kProductDetail).cacheable);
  EXPECT_FALSE(profile_for(Interaction::kShoppingCart).cacheable);
  EXPECT_FALSE(profile_for(Interaction::kBuyConfirm).cacheable);
  EXPECT_FALSE(profile_for(Interaction::kSearchResults).cacheable);
}

TEST(InteractionsTest, TotalQueriesSumsClasses) {
  const auto& p = profile_for(Interaction::kBuyConfirm);
  EXPECT_EQ(p.total_queries(),
            p.queries[0] + p.queries[1] + p.queries[2] + p.queries[3]);
}

TEST(ObjectSpaceTest, ProductDetailSpansItems) {
  EXPECT_EQ(object_space(Interaction::kProductDetail, 10000), 10000u);
  EXPECT_EQ(object_space(Interaction::kProductDetail, 100), 100u);
}

TEST(ObjectSpaceTest, ListingPagesSpanSubjects) {
  EXPECT_EQ(object_space(Interaction::kNewProducts, 10000), 24u);
  EXPECT_EQ(object_space(Interaction::kBestSellers, 10000), 24u);
}

TEST(ObjectSpaceTest, StaticPagesSingleObject) {
  EXPECT_EQ(object_space(Interaction::kHome, 10000), 1u);
  EXPECT_EQ(object_space(Interaction::kSearchRequest, 10000), 1u);
}

TEST(ObjectSpaceTest, NonCacheableZero) {
  EXPECT_EQ(object_space(Interaction::kBuyConfirm, 10000), 0u);
  EXPECT_EQ(object_space(Interaction::kSearchResults, 10000), 0u);
}

TEST(ObjectIdTest, EncodingRoundTrips) {
  const auto id = make_object_id(Interaction::kProductDetail, 1234);
  EXPECT_EQ(static_cast<Interaction>(id >> 48), Interaction::kProductDetail);
  EXPECT_EQ(id & 0xFFFFFFFFFFFFULL, 1234u);
}

TEST(ObjectIdTest, DistinctInteractionsDistinctIds) {
  EXPECT_NE(make_object_id(Interaction::kHome, 0),
            make_object_id(Interaction::kNewProducts, 0));
}

}  // namespace
}  // namespace ah::tpcw
