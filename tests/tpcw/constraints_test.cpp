#include "tpcw/constraints.hpp"

#include <gtest/gtest.h>

namespace ah::tpcw {
namespace {

using common::SimTime;

TEST(WirtLimitsTest, AllInteractionsHavePositiveLimits) {
  for (int i = 0; i < kInteractionCount; ++i) {
    EXPECT_GT(wirt_limit_seconds(static_cast<Interaction>(i)), 0.0);
  }
}

TEST(WirtLimitsTest, SpecSpotChecks) {
  // TPC-W clause 5.5.1.
  EXPECT_DOUBLE_EQ(wirt_limit_seconds(Interaction::kHome), 3.0);
  EXPECT_DOUBLE_EQ(wirt_limit_seconds(Interaction::kBestSellers), 5.0);
  EXPECT_DOUBLE_EQ(wirt_limit_seconds(Interaction::kSearchResults), 10.0);
  EXPECT_DOUBLE_EQ(wirt_limit_seconds(Interaction::kAdminConfirm), 20.0);
}

TEST(WirtTrackerTest, VacuouslyCompliantWithoutSamples) {
  WirtTracker tracker;
  EXPECT_TRUE(tracker.compliant());
  const auto result = tracker.check(Interaction::kHome);
  EXPECT_TRUE(result.compliant);
  EXPECT_EQ(result.samples, 0u);
}

TEST(WirtTrackerTest, CompliantWhenFast) {
  WirtTracker tracker;
  for (int i = 0; i < 100; ++i) {
    tracker.record(Interaction::kHome, SimTime::millis(200));
  }
  const auto result = tracker.check(Interaction::kHome);
  EXPECT_TRUE(result.compliant);
  EXPECT_NEAR(result.p90_seconds, 0.2, 1e-9);
  EXPECT_EQ(result.samples, 100u);
  EXPECT_TRUE(tracker.compliant());
}

TEST(WirtTrackerTest, ViolationDetectedAtP90) {
  WirtTracker tracker;
  // 80% fast, 20% at 8 s: p90 lands in the slow tail, over Home's 3 s.
  for (int i = 0; i < 80; ++i) {
    tracker.record(Interaction::kHome, SimTime::millis(100));
  }
  for (int i = 0; i < 20; ++i) {
    tracker.record(Interaction::kHome, SimTime::seconds(8.0));
  }
  EXPECT_FALSE(tracker.check(Interaction::kHome).compliant);
  EXPECT_FALSE(tracker.compliant());
}

TEST(WirtTrackerTest, TailBelowTenPercentTolerated) {
  WirtTracker tracker;
  // Only 5% slow: the 90th percentile stays in the fast mass.
  for (int i = 0; i < 95; ++i) {
    tracker.record(Interaction::kHome, SimTime::millis(100));
  }
  for (int i = 0; i < 5; ++i) {
    tracker.record(Interaction::kHome, SimTime::seconds(30.0));
  }
  EXPECT_TRUE(tracker.check(Interaction::kHome).compliant);
}

TEST(WirtTrackerTest, InteractionsIndependent) {
  WirtTracker tracker;
  tracker.record(Interaction::kHome, SimTime::seconds(100.0));
  tracker.record(Interaction::kBestSellers, SimTime::millis(10));
  EXPECT_FALSE(tracker.check(Interaction::kHome).compliant);
  EXPECT_TRUE(tracker.check(Interaction::kBestSellers).compliant);
  EXPECT_EQ(tracker.samples(Interaction::kHome), 1u);
  EXPECT_EQ(tracker.samples(Interaction::kBestSellers), 1u);
  EXPECT_EQ(tracker.samples(Interaction::kBuyConfirm), 0u);
}

TEST(WirtTrackerTest, CheckAllCoversEveryInteraction) {
  WirtTracker tracker;
  const auto results = tracker.check_all();
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kInteractionCount));
}

TEST(WirtTrackerTest, ResetDiscards) {
  WirtTracker tracker;
  tracker.record(Interaction::kHome, SimTime::seconds(100.0));
  tracker.reset();
  EXPECT_TRUE(tracker.compliant());
  EXPECT_EQ(tracker.samples(Interaction::kHome), 0u);
}

TEST(WirtTrackerTest, DifferentLimitsApplied) {
  WirtTracker tracker;
  // 4 s responses: violates Home (3 s) but not Best Sellers (5 s).
  for (int i = 0; i < 10; ++i) {
    tracker.record(Interaction::kHome, SimTime::seconds(4.0));
    tracker.record(Interaction::kBestSellers, SimTime::seconds(4.0));
  }
  EXPECT_FALSE(tracker.check(Interaction::kHome).compliant);
  EXPECT_TRUE(tracker.check(Interaction::kBestSellers).compliant);
}

}  // namespace
}  // namespace ah::tpcw
