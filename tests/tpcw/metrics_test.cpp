#include "tpcw/metrics.hpp"

#include <gtest/gtest.h>

namespace ah::tpcw {
namespace {

using common::SimTime;

TEST(WipsMeterTest, CountsInsideWindowOnly) {
  WipsMeter meter;
  meter.arm(SimTime::seconds(10.0), SimTime::seconds(20.0));
  meter.record(true, true, SimTime::seconds(5.0), SimTime::millis(10));
  meter.record(true, true, SimTime::seconds(15.0), SimTime::millis(10));
  meter.record(true, true, SimTime::seconds(25.0), SimTime::millis(10));
  EXPECT_EQ(meter.completed_ok(), 1u);
}

TEST(WipsMeterTest, WindowBoundariesHalfOpen) {
  WipsMeter meter;
  meter.arm(SimTime::seconds(10.0), SimTime::seconds(20.0));
  meter.record(true, false, SimTime::seconds(10.0), SimTime::zero());  // in
  meter.record(true, false, SimTime::seconds(20.0), SimTime::zero());  // out
  EXPECT_EQ(meter.completed_ok(), 1u);
}

TEST(WipsMeterTest, WipsIsRatePerSecond) {
  WipsMeter meter;
  meter.arm(SimTime::zero(), SimTime::seconds(10.0));
  for (int i = 0; i < 50; ++i) {
    meter.record(true, i % 2 == 0, SimTime::seconds(0.1 * i),
                 SimTime::millis(5));
  }
  EXPECT_NEAR(meter.wips(), 5.0, 1e-9);
}

TEST(WipsMeterTest, BrowseOrderSplit) {
  WipsMeter meter;
  meter.arm(SimTime::zero(), SimTime::seconds(10.0));
  for (int i = 0; i < 30; ++i) {
    meter.record(true, true, SimTime::seconds(0.1), SimTime::zero());
  }
  for (int i = 0; i < 10; ++i) {
    meter.record(true, false, SimTime::seconds(0.1), SimTime::zero());
  }
  EXPECT_NEAR(meter.wips_browse(), 3.0, 1e-9);
  EXPECT_NEAR(meter.wips_order(), 1.0, 1e-9);
  EXPECT_NEAR(meter.wips(), 4.0, 1e-9);
}

TEST(WipsMeterTest, ErrorsCountedSeparately) {
  WipsMeter meter;
  meter.arm(SimTime::zero(), SimTime::seconds(10.0));
  meter.record(true, true, SimTime::seconds(1.0), SimTime::zero());
  meter.record(false, true, SimTime::seconds(1.0), SimTime::zero());
  meter.record(false, true, SimTime::seconds(1.0), SimTime::zero());
  EXPECT_EQ(meter.completed_ok(), 1u);
  EXPECT_EQ(meter.errors(), 2u);
  EXPECT_NEAR(meter.error_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(WipsMeterTest, LatencyStatsOverOkOnly) {
  WipsMeter meter;
  meter.arm(SimTime::zero(), SimTime::seconds(10.0));
  meter.record(true, true, SimTime::seconds(1.0), SimTime::millis(100));
  meter.record(true, true, SimTime::seconds(1.0), SimTime::millis(200));
  meter.record(false, true, SimTime::seconds(1.0), SimTime::millis(900));
  EXPECT_EQ(meter.latency_ms().count(), 2u);
  EXPECT_NEAR(meter.latency_ms().mean(), 150.0, 1e-9);
}

TEST(WipsMeterTest, RearmResets) {
  WipsMeter meter;
  meter.arm(SimTime::zero(), SimTime::seconds(10.0));
  meter.record(true, true, SimTime::seconds(1.0), SimTime::millis(10));
  meter.arm(SimTime::seconds(20.0), SimTime::seconds(30.0));
  EXPECT_EQ(meter.completed_ok(), 0u);
  EXPECT_EQ(meter.errors(), 0u);
  EXPECT_EQ(meter.latency_ms().count(), 0u);
  EXPECT_EQ(meter.window_start(), SimTime::seconds(20.0));
  EXPECT_EQ(meter.window_end(), SimTime::seconds(30.0));
}

TEST(WipsMeterTest, EmptyWindowSafe) {
  WipsMeter meter;
  EXPECT_EQ(meter.wips(), 0.0);
  EXPECT_EQ(meter.error_ratio(), 0.0);
}

}  // namespace
}  // namespace ah::tpcw
