#include "tpcw/mix.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>

namespace ah::tpcw {
namespace {

TEST(MixTest, WeightsNormalized) {
  const Mix& m = Mix::standard(WorkloadKind::kBrowsing);
  double total = 0.0;
  for (int i = 0; i < kInteractionCount; ++i) {
    total += m.weight(static_cast<Interaction>(i));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MixTest, BrowseFractionsMatchTable1) {
  // Paper Table 1: Browse 95% / 80% / 50%.
  EXPECT_NEAR(Mix::standard(WorkloadKind::kBrowsing).browse_fraction(), 0.95,
              1e-3);
  EXPECT_NEAR(Mix::standard(WorkloadKind::kShopping).browse_fraction(), 0.80,
              1e-3);
  EXPECT_NEAR(Mix::standard(WorkloadKind::kOrdering).browse_fraction(), 0.50,
              1e-3);
}

TEST(MixTest, Table1SpotChecks) {
  const Mix& browsing = Mix::standard(WorkloadKind::kBrowsing);
  EXPECT_NEAR(browsing.weight(Interaction::kHome), 0.29, 1e-6);
  EXPECT_NEAR(browsing.weight(Interaction::kAdminConfirm), 0.0009, 1e-6);
  const Mix& ordering = Mix::standard(WorkloadKind::kOrdering);
  EXPECT_NEAR(ordering.weight(Interaction::kBuyConfirm), 0.1018, 1e-6);
  EXPECT_NEAR(ordering.weight(Interaction::kShoppingCart), 0.1353, 1e-6);
  const Mix& shopping = Mix::standard(WorkloadKind::kShopping);
  EXPECT_NEAR(shopping.weight(Interaction::kSearchRequest), 0.20, 1e-6);
}

TEST(MixTest, SamplingMatchesWeights) {
  const Mix& m = Mix::standard(WorkloadKind::kShopping);
  common::Rng rng(123);
  std::map<Interaction, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[m.sample(rng)];
  for (int i = 0; i < kInteractionCount; ++i) {
    const auto interaction = static_cast<Interaction>(i);
    const double expected = m.weight(interaction);
    const double actual =
        static_cast<double>(counts[interaction]) / kDraws;
    EXPECT_NEAR(actual, expected, 0.005)
        << interaction_name(interaction);
  }
}

TEST(MixTest, CustomWeightsNormalized) {
  std::array<double, kInteractionCount> w{};
  w[0] = 3.0;
  w[1] = 1.0;
  const Mix m(w);
  EXPECT_NEAR(m.weight(Interaction::kHome), 0.75, 1e-12);
  EXPECT_NEAR(m.weight(Interaction::kNewProducts), 0.25, 1e-12);
  EXPECT_EQ(m.weight(Interaction::kBuyConfirm), 0.0);
}

TEST(MixTest, ZeroWeightsThrow) {
  std::array<double, kInteractionCount> w{};
  EXPECT_THROW(Mix m(w), std::invalid_argument);
}

TEST(MixTest, NegativeWeightThrows) {
  std::array<double, kInteractionCount> w{};
  w[0] = 1.0;
  w[1] = -0.5;
  EXPECT_THROW(Mix m(w), std::invalid_argument);
}

TEST(MixTest, SampleNeverReturnsZeroWeightInteraction) {
  std::array<double, kInteractionCount> w{};
  w[3] = 1.0;
  const Mix m(w);
  common::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.sample(rng), Interaction::kProductDetail);
  }
}

TEST(MixTest, WorkloadNames) {
  EXPECT_EQ(workload_name(WorkloadKind::kBrowsing), "Browsing");
  EXPECT_EQ(workload_name(WorkloadKind::kShopping), "Shopping");
  EXPECT_EQ(workload_name(WorkloadKind::kOrdering), "Ordering");
}

// Parameterized: each standard mix is a valid distribution with the
// paper's Browse/Order split.
class StandardMixSweep : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(StandardMixSweep, AllWeightsNonNegativeAndSumToOne) {
  const Mix& m = Mix::standard(GetParam());
  double total = 0.0;
  for (int i = 0; i < kInteractionCount; ++i) {
    const double w = m.weight(static_cast<Interaction>(i));
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(StandardMixSweep, OrderingHasHighestOrderShare) {
  const double order_share = 1.0 - Mix::standard(GetParam()).browse_fraction();
  const double ordering_share =
      1.0 - Mix::standard(WorkloadKind::kOrdering).browse_fraction();
  EXPECT_LE(order_share, ordering_share + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllMixes, StandardMixSweep,
                         ::testing::Values(WorkloadKind::kBrowsing,
                                           WorkloadKind::kShopping,
                                           WorkloadKind::kOrdering));

}  // namespace
}  // namespace ah::tpcw
