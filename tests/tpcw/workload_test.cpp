#include "tpcw/workload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "../support/parked.hpp"

namespace ah::tpcw {
namespace {

using common::SimTime;

/// Fixture with a trivial frontend: every request succeeds after 10 ms.
/// (FrontendRouter with one fast proxy backend would drag the whole stack
/// in; instead we use a real router with zero backends replaced by a
/// wrapper.)  We test the Workload against a real FrontendRouter backed by
/// one in-process proxy whose upstream always succeeds.
class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : node_(sim_, 0, "p0", {}),
        frontend_(sim_, cluster::BalancePolicy::kRoundRobin) {
    webstack::ProxyParams params;
    params.maximum_object_size_in_memory = 64 * 1024;
    proxy_ = std::make_unique<webstack::ProxyServer>(
        sim_, node_,
        [this](const webstack::Request& r, cluster::Node&,
               webstack::ResponseFn done) {
          sim_.schedule(SimTime::millis(10),
                        [bytes = r.response_bytes,
                         done = test::park(std::move(done))]() mutable {
                          (*done)(webstack::Response{
                              true, webstack::Response::Origin::kApp, bytes});
                        });
        },
        params);
    frontend_.add_backend(proxy_.get());
  }

  Workload::Config config(int browsers) {
    Workload::Config c;
    c.browsers = browsers;
    c.seed = 42;
    return c;
  }

  sim::Simulator sim_;
  cluster::Node node_;
  webstack::FrontendRouter frontend_;
  std::unique_ptr<webstack::ProxyServer> proxy_;
  WipsMeter meter_;
};

TEST_F(WorkloadTest, ClosedLoopIssuesInteractions) {
  Workload workload(sim_, frontend_, &Mix::standard(WorkloadKind::kShopping),
                    meter_, config(50));
  meter_.arm(SimTime::zero(), SimTime::seconds(60.0));
  workload.start();
  sim_.run_until(SimTime::seconds(60.0));
  EXPECT_GT(workload.interactions_issued(), 100u);
  EXPECT_GT(meter_.completed_ok(), 100u);
}

TEST_F(WorkloadTest, ThroughputMatchesLittlesLaw) {
  // 100 browsers, ~3.5s think + ~11ms response => ~28.5 interactions/s.
  Workload workload(sim_, frontend_, &Mix::standard(WorkloadKind::kBrowsing),
                    meter_, config(100));
  meter_.arm(SimTime::seconds(30.0), SimTime::seconds(230.0));
  workload.start();
  sim_.run_until(SimTime::seconds(230.0));
  EXPECT_NEAR(meter_.wips(), 100.0 / 3.52, 2.0);
}

TEST_F(WorkloadTest, StopHaltsNewInteractions) {
  Workload workload(sim_, frontend_, &Mix::standard(WorkloadKind::kShopping),
                    meter_, config(20));
  workload.start();
  sim_.run_until(SimTime::seconds(30.0));
  workload.stop();
  const auto issued = workload.interactions_issued();
  sim_.run_until(SimTime::seconds(120.0));
  EXPECT_EQ(workload.interactions_issued(), issued);
}

TEST_F(WorkloadTest, BrowseShareTracksMix) {
  Workload workload(sim_, frontend_, &Mix::standard(WorkloadKind::kOrdering),
                    meter_, config(200));
  meter_.arm(SimTime::seconds(10.0), SimTime::seconds(300.0));
  workload.start();
  sim_.run_until(SimTime::seconds(300.0));
  const double browse_share =
      meter_.wips_browse() / std::max(1e-9, meter_.wips());
  EXPECT_NEAR(browse_share, 0.50, 0.04);  // ordering mix: 50% browse
}

TEST_F(WorkloadTest, MixSwitchTakesEffect) {
  Workload workload(sim_, frontend_, &Mix::standard(WorkloadKind::kBrowsing),
                    meter_, config(200));
  workload.start();
  sim_.run_until(SimTime::seconds(50.0));
  workload.set_mix(&Mix::standard(WorkloadKind::kOrdering));
  meter_.arm(SimTime::seconds(60.0), SimTime::seconds(300.0));
  sim_.run_until(SimTime::seconds(300.0));
  const double browse_share =
      meter_.wips_browse() / std::max(1e-9, meter_.wips());
  EXPECT_NEAR(browse_share, 0.50, 0.05);
}

TEST_F(WorkloadTest, DeterministicAcrossRuns) {
  std::uint64_t issued[2];
  for (int run = 0; run < 2; ++run) {
    sim::Simulator sim;
    cluster::Node node(sim, 0, "p0", {});
    webstack::FrontendRouter frontend(sim,
                                      cluster::BalancePolicy::kRoundRobin);
    webstack::ProxyServer proxy(
        sim, node,
        [&sim](const webstack::Request& r, cluster::Node&,
               webstack::ResponseFn done) {
          sim.schedule(SimTime::millis(10),
                       [bytes = r.response_bytes,
                        done = test::park(std::move(done))]() mutable {
                         (*done)(webstack::Response{
                             true, webstack::Response::Origin::kApp, bytes});
                       });
        },
        webstack::ProxyParams{});
    frontend.add_backend(&proxy);
    WipsMeter meter;
    Workload::Config c;
    c.browsers = 30;
    c.seed = 7;
    Workload workload(sim, frontend, &Mix::standard(WorkloadKind::kShopping),
                      meter, c);
    workload.start();
    sim.run_until(SimTime::seconds(100.0));
    issued[run] = workload.interactions_issued();
  }
  EXPECT_EQ(issued[0], issued[1]);
}

TEST_F(WorkloadTest, CacheableObjectSizesAreStable) {
  // The same page identity must always have the same size, otherwise the
  // proxy cache would see phantom object updates.
  Workload workload(sim_, frontend_, &Mix::standard(WorkloadKind::kBrowsing),
                    meter_, config(100));
  workload.start();
  sim_.run_until(SimTime::seconds(120.0));
  // All cacheable traffic flowed through one proxy; a size mismatch would
  // manifest as a refresh changing LruCache::used() vs object_count drift.
  // Spot-verify via the proxy disk cache: lookup sizes must be consistent.
  EXPECT_GT(proxy_->disk_cache().object_count(), 0u);
}

TEST_F(WorkloadTest, FailedInteractionsAreRetried) {
  // A frontend that fails the first attempt of every request id and
  // succeeds on retry.
  sim::Simulator sim;
  cluster::Node node(sim, 0, "p0", {});
  webstack::FrontendRouter frontend(sim, cluster::BalancePolicy::kRoundRobin);
  std::set<std::uint64_t> seen;
  webstack::ProxyServer proxy(
      sim, node,
      [&sim, &seen](const webstack::Request& r, cluster::Node&,
                    webstack::ResponseFn done) {
        const bool first_attempt = seen.insert(r.id).second;
        sim.schedule(
            SimTime::millis(5),
            [bytes = r.response_bytes, first_attempt,
             done = test::park(std::move(done))]() mutable {
              (*done)(webstack::Response{
                  !first_attempt,
                  first_attempt ? webstack::Response::Origin::kError
                                : webstack::Response::Origin::kApp,
                  first_attempt ? 0 : bytes});
            });
      },
      webstack::ProxyParams{});
  frontend.add_backend(&proxy);
  WipsMeter meter;
  meter.arm(SimTime::zero(), SimTime::seconds(120.0));
  Workload::Config c;
  c.browsers = 10;
  c.seed = 5;
  Workload workload(sim, frontend, &Mix::standard(WorkloadKind::kOrdering),
                    meter, c);
  workload.start();
  sim.run_until(SimTime::seconds(120.0));
  // Every interaction eventually succeeds (after one retry each) and the
  // failures are recorded as errors.
  EXPECT_GT(meter.completed_ok(), 50u);
  EXPECT_GT(meter.errors(), 50u);
}

TEST_F(WorkloadTest, RetriesGiveUpAfterMaxAttempts) {
  sim::Simulator sim;
  cluster::Node node(sim, 0, "p0", {});
  webstack::FrontendRouter frontend(sim, cluster::BalancePolicy::kRoundRobin);
  std::uint64_t attempts = 0;
  webstack::ProxyServer proxy(
      sim, node,
      [&sim, &attempts](const webstack::Request&, cluster::Node&,
                        webstack::ResponseFn done) {
        ++attempts;
        sim.schedule(SimTime::millis(1),
                     [done = test::park(std::move(done))]() mutable {
                       (*done)(webstack::Response{
                           false, webstack::Response::Origin::kError, 0});
                     });
      },
      webstack::ProxyParams{});
  frontend.add_backend(&proxy);
  WipsMeter meter;
  meter.arm(SimTime::zero(), SimTime::seconds(600.0));
  Workload::Config c;
  c.browsers = 1;
  c.retry.max_retries = 2;
  c.think_mean = SimTime::seconds(1000.0);  // effectively one interaction
  c.think_cap = SimTime::seconds(2000.0);
  c.seed = 5;
  Workload workload(sim, frontend, &Mix::standard(WorkloadKind::kOrdering),
                    meter, c);
  workload.start();
  sim.run_until(SimTime::seconds(600.0));
  // Exactly one interaction: 1 attempt + 2 retries, then the browser
  // gives up and thinks.
  EXPECT_EQ(workload.interactions_issued(), 1u);
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(meter.completed_ok(), 0u);
}

TEST_F(WorkloadTest, ThinkTimesRespectCap) {
  Workload::Config c = config(10);
  c.think_mean = SimTime::seconds(1.0);
  c.think_cap = SimTime::seconds(2.0);
  Workload workload(sim_, frontend_, &Mix::standard(WorkloadKind::kShopping),
                    meter_, c);
  meter_.arm(SimTime::zero(), SimTime::seconds(300.0));
  workload.start();
  sim_.run_until(SimTime::seconds(300.0));
  // With mean 1s (capped) think and 10 EBs, at least ~8/s must flow; an
  // uncapped heavy tail would push throughput visibly lower.
  EXPECT_GT(meter_.wips(), 7.0);
}

}  // namespace
}  // namespace ah::tpcw
