#include "tpcw/zipf.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ah::tpcw {
namespace {

TEST(ZipfTest, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 0.8), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler z(100, 0.8);
  common::Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler z(1000, 0.8);
  for (std::uint64_t k = 1; k < 1000; ++k) {
    EXPECT_GE(z.pmf(k - 1), z.pmf(k));
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(500, 1.2);
  double total = 0.0;
  for (std::uint64_t k = 0; k < 500; ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfOutOfRangeZero) {
  ZipfSampler z(10, 0.8);
  EXPECT_EQ(z.pmf(10), 0.0);
  EXPECT_EQ(z.pmf(1000), 0.0);
}

TEST(ZipfTest, HeadHeavierWithLargerAlpha) {
  ZipfSampler mild(1000, 0.5);
  ZipfSampler steep(1000, 1.5);
  EXPECT_GT(steep.pmf(0), mild.pmf(0));
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  ZipfSampler z(50, 0.9);
  common::Rng rng(77);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, z.pmf(k), 0.005);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfSampler z(1, 0.8);
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfTest, SizeAndAlphaAccessors) {
  ZipfSampler z(42, 0.7);
  EXPECT_EQ(z.size(), 42u);
  EXPECT_DOUBLE_EQ(z.alpha(), 0.7);
}

// The guide-table fast path must return bit-for-bit the rank the binary
// search would — sweep seeded uniform draws across a grid of (n, alpha)
// covering the degenerate corners (uniform alpha, single element).
TEST(ZipfTest, GuideTableMatchesLowerBoundSeededSweep) {
  const std::uint64_t sizes[] = {1, 2, 7, 100, 10000};
  const double alphas[] = {0.0, 0.3, 0.8, 1.0, 1.5, 3.0};
  for (const std::uint64_t n : sizes) {
    for (const double alpha : alphas) {
      ZipfSampler z(n, alpha);
      common::Rng rng(n * 1000 + static_cast<std::uint64_t>(alpha * 10));
      for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_EQ(z.rank(u), z.rank_reference(u))
            << "n=" << n << " alpha=" << alpha << " u=" << u;
      }
    }
  }
}

// Draws that land exactly on or next to CDF edges are the cases where the
// guide bucket rounds to the wrong side; the walk must recover.
TEST(ZipfTest, GuideTableMatchesLowerBoundAtCdfEdges) {
  ZipfSampler z(64, 1.1);
  for (std::uint64_t k = 0; k < 64; ++k) {
    double c = 0.0;
    for (std::uint64_t j = 0; j <= k; ++j) c += z.pmf(j);
    for (const double u : {std::nextafter(c, 0.0), c, std::nextafter(c, 1.0)}) {
      if (u < 0.0 || u >= 1.0) continue;
      EXPECT_EQ(z.rank(u), z.rank_reference(u)) << "k=" << k << " u=" << u;
    }
  }
}

// Chi-square goodness of fit: empirical counts over the head ranks should
// be consistent with the pmf (statistic well under the 0.001 critical
// value for the chosen bin count).
TEST(ZipfTest, ChiSquareAgainstPmf) {
  ZipfSampler z(200, 0.9);
  common::Rng rng(2024);
  constexpr int kDraws = 500000;
  constexpr std::uint64_t kBins = 20;  // 19 dof; chi2_0.999(19) ~ 43.8
  std::vector<int> counts(kBins + 1, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t k = z.sample(rng);
    ++counts[k < kBins ? k : kBins];
  }
  double tail_p = 1.0;
  double chi2 = 0.0;
  for (std::uint64_t k = 0; k < kBins; ++k) {
    const double expected = z.pmf(k) * kDraws;
    tail_p -= z.pmf(k);
    const double d = counts[k] - expected;
    chi2 += d * d / expected;
  }
  const double tail_expected = tail_p * kDraws;
  const double d = counts[kBins] - tail_expected;
  chi2 += d * d / tail_expected;
  EXPECT_LT(chi2, 43.8);
}

}  // namespace
}  // namespace ah::tpcw
