#include "tpcw/zipf.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ah::tpcw {
namespace {

TEST(ZipfTest, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 0.8), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler z(100, 0.8);
  common::Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 100u);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler z(1000, 0.8);
  for (std::uint64_t k = 1; k < 1000; ++k) {
    EXPECT_GE(z.pmf(k - 1), z.pmf(k));
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(500, 1.2);
  double total = 0.0;
  for (std::uint64_t k = 0; k < 500; ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfOutOfRangeZero) {
  ZipfSampler z(10, 0.8);
  EXPECT_EQ(z.pmf(10), 0.0);
  EXPECT_EQ(z.pmf(1000), 0.0);
}

TEST(ZipfTest, HeadHeavierWithLargerAlpha) {
  ZipfSampler mild(1000, 0.5);
  ZipfSampler steep(1000, 1.5);
  EXPECT_GT(steep.pmf(0), mild.pmf(0));
}

TEST(ZipfTest, EmpiricalFrequenciesMatchPmf) {
  ZipfSampler z(50, 0.9);
  common::Rng rng(77);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, z.pmf(k), 0.005);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfSampler z(1, 0.8);
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfTest, SizeAndAlphaAccessors) {
  ZipfSampler z(42, 0.7);
  EXPECT_EQ(z.size(), 42u);
  EXPECT_DOUBLE_EQ(z.alpha(), 0.7);
}

}  // namespace
}  // namespace ah::tpcw
