// Layering fixture: target of the justified upward include below.
#pragma once
