// Layering fixture: bottom layer; anything may include common.
#pragma once
