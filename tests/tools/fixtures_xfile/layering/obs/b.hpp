// Layering fixture: second half of the a <-> b cycle.
#pragma once
#include "a.hpp"
