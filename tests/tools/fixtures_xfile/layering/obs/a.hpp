// Layering fixture: include cycle a <-> b -> one cycle finding, reported
// at this file's include of b.hpp.
#pragma once
#include "b.hpp"
