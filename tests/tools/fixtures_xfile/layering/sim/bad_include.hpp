// Layering fixture: sim reaching up into core -> one layering finding.
#pragma once
#include "core/top.hpp"
