// Layering fixture: core may include anything (no finding for this edge).
#pragma once
#include "common/base.hpp"
