// Layering fixture: upward include with a recorded justification — the
// AH_LAYERING_ALLOW on the line above the include suppresses the finding.
#pragma once
// AH_LAYERING_ALLOW("fixture: justified upward dependency")
#include "tpcw/pages.hpp"
