// ah_lint cross-file fixture: seeded entry point.  Taint flows from the
// AH_HOT_ENTRY seed in issue() through the include graph into util.hpp
// (unmarked -> missing-marker + allocation findings) and never reaches
// stale.cpp (marked -> stale-marker finding).  Never compiled.
#include "util.hpp"

AH_HOT_PATH_FILE;

void issue() {
  AH_HOT_ENTRY;
  helper();
}
