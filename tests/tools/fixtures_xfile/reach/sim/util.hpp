// Unmarked header reached by taint from entry.cpp: expects one
// missing-marker finding (at helper) and one allocation finding.
#pragma once

struct Widget {};

inline Widget* helper() {
  return new Widget;  // reachable allocation in unannotated code
}
