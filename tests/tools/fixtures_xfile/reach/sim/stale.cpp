// Marked file that no seed reaches: expects one stale-marker finding.
AH_HOT_PATH_FILE;

void unreferenced_helper() {}
