// End-to-end tests for tools/ah_lint: spawn the real binary against the
// fixture tree and assert on output + exit code.  The binary path and the
// fixture directory come in as compile definitions from CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout only; the summary line goes to stderr
};

RunResult run_lint(const std::string& args) {
  const std::string cmd =
      std::string(AH_LINT_BINARY) + " " + args + " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(AH_LINT_FIXTURES) + "/" + name;
}

std::string xfile(const std::string& name) {
  return std::string(AH_LINT_FIXTURES_XFILE) + "/" + name;
}

std::size_t count(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(AhLintTest, HotPathAllocFiresOnFunctionAndNothrowNew) {
  // std::function fires, and so does `new(std::nothrow)` with no space
  // before the paren (the regex accepts `new(` as well as `new `).
  const RunResult result = run_lint(fixture("hot_path_alloc.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[hot_path_alloc]"), 2u) << result.output;
  EXPECT_NE(result.output.find("hot_path_alloc.cpp:9:"), std::string::npos)
      << result.output;
}

TEST(AhLintTest, DeterminismFiresExactlyOnce) {
  const RunResult result = run_lint(fixture("sim/determinism.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[determinism]"), 1u) << result.output;
}

TEST(AhLintTest, PoolingFiresExactlyOnce) {
  const RunResult result = run_lint(fixture("pooling.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[pooling]"), 1u) << result.output;
}

TEST(AhLintTest, IncludeHygieneFiresExactlyOnce) {
  const RunResult result = run_lint(fixture("include_hygiene.hpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[include_hygiene]"), 1u) << result.output;
}

TEST(AhLintTest, ObsHotPathFiresExactlyOnce) {
  // The direct hist->record_us(...) call fires; the AH_OBS_RECORD_US macro
  // invocation on the next line must not.
  const RunResult result = run_lint(fixture("obs_hot_path.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[obs_hot_path]"), 1u) << result.output;
}

TEST(AhLintTest, SharedStateFiresOnStaticAndMutableOnly) {
  // One non-const static + one mutable member fire; const/constexpr
  // statics, static_cast, static_assert, and the suppressed sites do not.
  const RunResult result = run_lint(fixture("shared_state.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[shared_state]"), 2u) << result.output;
  EXPECT_NE(result.output.find("shared_state.cpp:15:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("shared_state.cpp:16:"), std::string::npos)
      << result.output;
}

TEST(AhLintTest, FindingsCarryFileAndLine) {
  const RunResult result = run_lint(fixture("hot_path_alloc.cpp"));
  // `file:line: [rule]` so editors can jump to the finding.
  EXPECT_NE(result.output.find("hot_path_alloc.cpp:6: [hot_path_alloc]"),
            std::string::npos)
      << result.output;
}

TEST(AhLintTest, SuppressedFixtureIsClean) {
  // Covers ALLOW on the line above, ALLOW on the same line, and banned
  // tokens inside comments/strings — none of which may fire.
  const RunResult result = run_lint(fixture("suppressed.cpp"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_TRUE(result.output.empty()) << result.output;
}

TEST(AhLintTest, CommentContinuationHidesTokens) {
  // A backslash-continued `//` comment extends onto the next physical line;
  // the std::function hidden there must not fire.
  const RunResult result = run_lint(fixture("comment_continuation.cpp"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_TRUE(result.output.empty()) << result.output;
}

TEST(AhLintTest, PtrOrderFiresOncePerDetector) {
  // Pointer hash, pointer-keyed ordered container, pointer comparator,
  // pointer-to-integer cast, and %p formatting — one finding each.
  const RunResult result = run_lint(fixture("sim/ptr_order.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[ptr_order]"), 5u) << result.output;
}

TEST(AhLintTest, DirectoryScanAggregatesFindings) {
  const RunResult result = run_lint(std::string(AH_LINT_FIXTURES));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[hot_path_alloc]"), 2u) << result.output;
  EXPECT_EQ(count(result.output, "[determinism]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[pooling]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[include_hygiene]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[obs_hot_path]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[shared_state]"), 2u) << result.output;
  EXPECT_EQ(count(result.output, "[ptr_order]"), 5u) << result.output;
}

TEST(AhLintTest, CrossFileTaintFlagsReachedAndStaleFiles) {
  // entry.cpp seeds issue(); taint crosses the include graph into util.hpp
  // (missing marker + reachable allocation, each carrying the call chain)
  // while stale.cpp's marker is unreached.
  const RunResult result = run_lint(xfile("reach"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[hot_path_reach]"), 3u) << result.output;
  EXPECT_NE(result.output.find("stale.cpp:2:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("stale marker"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("missing marker"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("issue -> helper"), std::string::npos)
      << result.output;
}

TEST(AhLintTest, LayeringFlagsUpwardIncludeAndCycle) {
  // sim -> core inverts the DAG; obs/a.hpp <-> obs/b.hpp is a cycle; the
  // AH_LAYERING_ALLOW'd upward include in webstack/justified.hpp is clean.
  const RunResult result = run_lint(xfile("layering"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[layering]"), 2u) << result.output;
  EXPECT_NE(result.output.find("include cycle"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("bad_include.hpp:3:"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("justified.hpp"), std::string::npos)
      << result.output;
}

TEST(AhLintTest, JsonFormatCarriesRulesAndFindings) {
  const RunResult result =
      run_lint("--format=json " + fixture("hot_path_alloc.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("\"version\": 1"), std::string::npos)
      << result.output;
  // The rule list is emitted in registration order — stable for diffing.
  EXPECT_NE(result.output.find(
                "\"rules\": [\"hot_path_alloc\", \"determinism\", "
                "\"pooling\", \"include_hygiene\", \"obs_hot_path\", "
                "\"shared_state\", \"hot_path_reach\", \"layering\", "
                "\"ptr_order\"]"),
            std::string::npos)
      << result.output;
  EXPECT_EQ(count(result.output, "\"rule\": \"hot_path_alloc\""), 2u)
      << result.output;
}

TEST(AhLintTest, BaselineRoundTripToleratesExistingFindings) {
  // --write-baseline captures current counts; rescanning with that baseline
  // exits clean, and the baseline file only tolerates counts, not lines.
  const std::string baseline_path =
      ::testing::TempDir() + "ah_lint_baseline_roundtrip.txt";
  const RunResult write = run_lint("--write-baseline " + baseline_path + " " +
                                   std::string(AH_LINT_FIXTURES));
  EXPECT_EQ(write.exit_code, 0) << write.output;
  const RunResult rescan = run_lint("--baseline " + baseline_path + " " +
                                    std::string(AH_LINT_FIXTURES));
  EXPECT_EQ(rescan.exit_code, 0) << rescan.output;
  std::remove(baseline_path.c_str());
}

TEST(AhLintTest, DumpTaintShowsSeedsAndChains) {
  const RunResult result = run_lint("--dump-taint " + xfile("reach"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("issue  [seed]"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("helper  [issue -> helper]"),
            std::string::npos)
      << result.output;
}

TEST(AhLintTest, ExplainPrintsRuleDoc) {
  const RunResult result = run_lint("--explain hot_path_reach");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("AH_HOT_ENTRY"), std::string::npos)
      << result.output;
  const RunResult unknown = run_lint("--explain no_such_rule");
  EXPECT_EQ(unknown.exit_code, 2);
}

TEST(AhLintTest, ListRulesNamesEveryRule) {
  const RunResult result = run_lint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"hot_path_alloc", "determinism", "pooling", "include_hygiene",
        "obs_hot_path", "shared_state", "hot_path_reach", "layering",
        "ptr_order"}) {
    EXPECT_NE(result.output.find(rule), std::string::npos) << rule;
  }
}

TEST(AhLintTest, MissingPathIsAUsageError) {
  const RunResult result = run_lint(fixture("no_such_file.cpp"));
  EXPECT_EQ(result.exit_code, 2);
}

TEST(AhLintTest, SourceTreeIsClean) {
  // The repo's own src/ must stay lint-clean; this is the same invocation
  // the `ah_lint_src` build target runs.
  const RunResult result = run_lint(std::string(AH_SRC_DIR));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(AhLintTest, TaintReachesEveryMarkedSourceFile) {
  // The manual AH_HOT_PATH_FILE markers must be a subset of what the taint
  // analysis reaches: enumerate every marked file under src/ and assert its
  // stem appears in --dump-taint output.  (Stem, not path: a marked header
  // whose same-stem .cpp carries the reached definitions counts as covered —
  // the same pairing the stale-marker check uses.)
  const RunResult taint = run_lint("--dump-taint " + std::string(AH_SRC_DIR));
  EXPECT_EQ(taint.exit_code, 0) << taint.output;
  const std::filesystem::path src(AH_SRC_DIR);
  std::vector<std::string> marked;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".hpp" && ext != ".cpp") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      const auto first = line.find_first_not_of(" \t");
      if (first != std::string::npos &&
          line.compare(first, 17, "AH_HOT_PATH_FILE;") == 0) {
        marked.push_back(entry.path().lexically_relative(src).generic_string());
        break;
      }
    }
  }
  ASSERT_GT(marked.size(), 10u) << "marker enumeration went wrong";
  for (const std::string& rel : marked) {
    std::filesystem::path stem(rel);
    stem.replace_extension();
    // Taint lines are `src/<rel>: <function>  [chain]`.
    const std::string want = "src/" + stem.generic_string() + ".";
    EXPECT_NE(taint.output.find(want), std::string::npos)
        << "marked file not reached by any AH_HOT_ENTRY seed: " << rel;
  }
}

}  // namespace
