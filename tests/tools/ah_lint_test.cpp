// End-to-end tests for tools/ah_lint: spawn the real binary against the
// fixture tree and assert on output + exit code.  The binary path and the
// fixture directory come in as compile definitions from CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout only; the summary line goes to stderr
};

RunResult run_lint(const std::string& args) {
  const std::string cmd =
      std::string(AH_LINT_BINARY) + " " + args + " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(AH_LINT_FIXTURES) + "/" + name;
}

std::size_t count(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(AhLintTest, HotPathAllocFiresExactlyOnce) {
  const RunResult result = run_lint(fixture("hot_path_alloc.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[hot_path_alloc]"), 1u) << result.output;
}

TEST(AhLintTest, DeterminismFiresExactlyOnce) {
  const RunResult result = run_lint(fixture("sim/determinism.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[determinism]"), 1u) << result.output;
}

TEST(AhLintTest, PoolingFiresExactlyOnce) {
  const RunResult result = run_lint(fixture("pooling.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[pooling]"), 1u) << result.output;
}

TEST(AhLintTest, IncludeHygieneFiresExactlyOnce) {
  const RunResult result = run_lint(fixture("include_hygiene.hpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[include_hygiene]"), 1u) << result.output;
}

TEST(AhLintTest, ObsHotPathFiresExactlyOnce) {
  // The direct hist->record_us(...) call fires; the AH_OBS_RECORD_US macro
  // invocation on the next line must not.
  const RunResult result = run_lint(fixture("obs_hot_path.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[obs_hot_path]"), 1u) << result.output;
}

TEST(AhLintTest, SharedStateFiresOnStaticAndMutableOnly) {
  // One non-const static + one mutable member fire; const/constexpr
  // statics, static_cast, static_assert, and the suppressed sites do not.
  const RunResult result = run_lint(fixture("shared_state.cpp"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[shared_state]"), 2u) << result.output;
  EXPECT_NE(result.output.find("shared_state.cpp:15:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("shared_state.cpp:16:"), std::string::npos)
      << result.output;
}

TEST(AhLintTest, FindingsCarryFileAndLine) {
  const RunResult result = run_lint(fixture("hot_path_alloc.cpp"));
  // `file:line: [rule]` so editors can jump to the finding.
  EXPECT_NE(result.output.find("hot_path_alloc.cpp:6: [hot_path_alloc]"),
            std::string::npos)
      << result.output;
}

TEST(AhLintTest, SuppressedFixtureIsClean) {
  // Covers ALLOW on the line above, ALLOW on the same line, and banned
  // tokens inside comments/strings — none of which may fire.
  const RunResult result = run_lint(fixture("suppressed.cpp"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_TRUE(result.output.empty()) << result.output;
}

TEST(AhLintTest, DirectoryScanAggregatesFindings) {
  const RunResult result = run_lint(std::string(AH_LINT_FIXTURES));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(count(result.output, "[hot_path_alloc]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[determinism]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[pooling]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[include_hygiene]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[obs_hot_path]"), 1u) << result.output;
  EXPECT_EQ(count(result.output, "[shared_state]"), 2u) << result.output;
}

TEST(AhLintTest, ListRulesNamesEveryRule) {
  const RunResult result = run_lint("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* rule : {"hot_path_alloc", "determinism", "pooling",
                           "include_hygiene", "obs_hot_path",
                           "shared_state"}) {
    EXPECT_NE(result.output.find(rule), std::string::npos) << rule;
  }
}

TEST(AhLintTest, MissingPathIsAUsageError) {
  const RunResult result = run_lint(fixture("no_such_file.cpp"));
  EXPECT_EQ(result.exit_code, 2);
}

TEST(AhLintTest, SourceTreeIsClean) {
  // The repo's own src/ must stay lint-clean; this is the same invocation
  // the `ah_lint_src` build target runs.
  const RunResult result = run_lint(std::string(AH_SRC_DIR));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

}  // namespace
