// Unit tests for ah_lint's lexical layer (tools/ah_lint/index.*): strip()
// edge cases that the end-to-end fixture scans cannot pin precisely.
#include <gtest/gtest.h>

#include <string>

#include "index.hpp"

namespace {

using ah_lint::split_lines;
using ah_lint::strip;

TEST(AhLintStripTest, PreservesLengthAndNewlines) {
  // strip() blanks comment/literal characters in place so line and column
  // numbers survive; it never inserts or deletes.
  const std::string text =
      "int a; // trailing\n/* block\nspans lines */ int b = \"s\\ntr\";\n";
  const std::string out = strip(text);
  EXPECT_EQ(out.size(), text.size());
  EXPECT_EQ(static_cast<long>(split_lines(out).size()),
            static_cast<long>(split_lines(text).size()));
}

TEST(AhLintStripTest, RemovesLineAndBlockComments) {
  const std::string out =
      strip("keep1; // std::function gone\nkeep2; /* new X */ keep3;\n");
  EXPECT_NE(out.find("keep1;"), std::string::npos);
  EXPECT_NE(out.find("keep2;"), std::string::npos);
  EXPECT_NE(out.find("keep3;"), std::string::npos);
  EXPECT_EQ(out.find("std::function"), std::string::npos);
  EXPECT_EQ(out.find("new"), std::string::npos);
}

TEST(AhLintStripTest, BackslashContinuedLineCommentEatsNextLine) {
  // Translation phase 2 splices a trailing backslash before comments are
  // recognized, so the second physical line is still comment text.
  const std::string out =
      strip("// hidden \\\nstd::function<void()> f;\nint real;\n");
  EXPECT_EQ(out.find("std::function"), std::string::npos) << out;
  EXPECT_NE(out.find("int real;"), std::string::npos) << out;
}

TEST(AhLintStripTest, RawStringWithCustomDelimiter) {
  // The )xy" closer — not the first )" — ends the literal; an embedded
  // quote or )" must not terminate it early.
  const std::string out =
      strip("auto s = R\"xy(has \" quote and )\" closer)xy\"; tail();\n");
  EXPECT_EQ(out.find("quote"), std::string::npos) << out;
  EXPECT_EQ(out.find("closer"), std::string::npos) << out;
  EXPECT_NE(out.find("tail();"), std::string::npos) << out;
}

TEST(AhLintStripTest, DigitSeparatorIsNotACharLiteral) {
  // 1'000'000: the quotes follow alphanumerics, so they are separators, not
  // char-literal openers — the code after must survive.
  const std::string out = strip("int n = 1'000'000; after(n);\n");
  EXPECT_NE(out.find("after(n);"), std::string::npos) << out;
}

TEST(AhLintStripTest, EscapedQuoteDoesNotEndString) {
  const std::string out =
      strip("const char* s = \"a\\\"new X\\\"b\"; after();\n");
  EXPECT_EQ(out.find("new"), std::string::npos) << out;
  EXPECT_NE(out.find("after();"), std::string::npos) << out;
}

TEST(AhLintStripTest, QuoteCharLiteralDoesNotOpenString) {
  const std::string out = strip("char q = '\"'; after();\n");
  EXPECT_NE(out.find("after();"), std::string::npos) << out;
}

TEST(AhLintStripTest, KeepLiteralsRetainsStringsButNotComments) {
  // keep_literals feeds the %p detector: format strings stay visible while
  // comments are still blanked.
  const std::string text = "printf(\"%p\\n\", p); // %p in comment\n";
  const std::string out = strip(text, /*keep_literals=*/true);
  EXPECT_NE(out.find("\"%p"), std::string::npos) << out;
  EXPECT_EQ(out.find("comment"), std::string::npos) << out;
  // Default mode blanks the format string, so no %p survives anywhere.
  EXPECT_EQ(strip(text).find("%p"), std::string::npos);
}

}  // namespace
