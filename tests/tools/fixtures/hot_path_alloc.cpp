// ah_lint fixture: two hot_path_alloc findings (std::function; nothrow new
// with no space before the paren).  Never compiled — scanned by ah_lint_test.
AH_HOT_PATH_FILE;

struct Handler {
  std::function<void()> callback;  // finding one
};

void* grow() { return new(std::nothrow) Handler; }  // finding two
