// ah_lint fixture: exactly one hot_path_alloc finding (std::function).
// Never compiled — scanned by ah_lint_test only.
AH_HOT_PATH_FILE;

struct Handler {
  std::function<void()> callback;  // the one finding
};
