// ah_lint fixture: exactly one pooling finding (std::deque in a hot-path
// file).  Never compiled — scanned by ah_lint_test only.
AH_HOT_PATH_FILE;

struct Queue {
  std::deque<int> pending;  // the one finding
};
