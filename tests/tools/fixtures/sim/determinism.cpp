// ah_lint fixture: exactly one determinism finding (wall clock).  Lives
// under a sim/ path component so the path-scoped rule applies.  Never
// compiled — scanned by ah_lint_test only.

double now_wallclock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
