// ah_lint fixture: exactly five ptr_order findings, one per detector
// (pointer hash, pointer-keyed ordered container, pointer comparator,
// pointer-to-integer cast, "%p" in a format string).  Lives under a sim/
// path component so the determinism-scoped rule applies; deliberately free
// of determinism-rule tokens.  Never compiled — scanned by ah_lint_test only.

struct Node {};

std::size_t hash_by_identity(Node* n) {
  return std::hash<Node*>{}(n);  // finding: pointer hash
}

std::set<Node*> live_nodes;  // finding: iteration order is address order

bool before(Node* a, Node* b) {
  return std::less<Node*>{}(a, b);  // finding: pointer comparator
}

std::uintptr_t key_of(Node* n) {
  return reinterpret_cast<std::uintptr_t>(n);  // finding: address as value
}

void dump(Node* n) {
  std::printf("node %p\n", static_cast<void*>(n));  // finding: %p output
}
