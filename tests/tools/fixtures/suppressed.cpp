// ah_lint fixture: a banned construct under AH_LINT_ALLOW — zero findings.
// Exercises both placements: the line above and the same line.  Also checks
// that banned tokens inside comments and string literals do not fire:
// std::function, steady_clock, std::deque.  Never compiled.
AH_HOT_PATH_FILE;

struct Server {
  void start() {
    AH_LINT_ALLOW(hot_path_alloc, "fixture: start-up-only allocation");
    pool_ = std::make_unique<Pool>();
    buffer_ = std::make_unique<Buffer>();  AH_LINT_ALLOW(hot_path_alloc, "fixture: same-line form");
  }
  const char* doc_ = "comments may say std::function freely";
};
