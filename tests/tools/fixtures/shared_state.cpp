// ah_lint fixture: exactly two shared_state findings — one non-const
// static, one mutable member.  The const/constexpr statics, static_cast,
// static_assert, the suppressed sites, and tokens in comments (mutable,
// static int) must not fire.  Never compiled — scanned by ah_lint_test only.
AH_IMMUTABLE_STATE_FILE;

static const int kTable[] = {1, 2, 3};     // const table: allowed
static constexpr double kAlpha = 0.8;      // constexpr: allowed

class PopularityTable {
 public:
  int rank(double u) const { return static_cast<int>(u); }  // cast: allowed

 private:
  static int call_count;          // the non-const-static finding
  mutable int cached_rank_ = -1;  // the mutable finding
};

static_assert(sizeof(PopularityTable) > 0, "no whitespace after static");

AH_LINT_ALLOW(shared_state, "fixture: line-above suppression");
static int suppressed_counter = 0;
static bool suppressed_flag = false;  AH_LINT_ALLOW(shared_state, "fixture: same-line form");
