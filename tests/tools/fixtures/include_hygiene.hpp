// ah_lint fixture: exactly one include_hygiene finding (<iostream> in a
// header).  Never compiled — scanned by ah_lint_test only.
#pragma once

#include <iostream>
