// ah_lint fixture: expects ZERO findings.  The backslash-continued line \
comment below hides a banned token on its continuation line; a scanner that \
ends // comments at the first newline would report it.  Never compiled.
AH_HOT_PATH_FILE;

// the next physical line is still part of this comment \
   std::function<void()> hidden_in_comment;

int real_code() { return 1; }
