// ah_lint fixture: exactly one obs_hot_path finding (direct record call).
// Never compiled — scanned by ah_lint_test only.
AH_HOT_PATH_FILE;

void finish(Histogram* hist, long latency_us) {
  hist->record_us(latency_us);  // the one finding
  AH_OBS_RECORD_US(hist, latency_us);  // macro form: allowed
}
