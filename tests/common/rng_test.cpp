#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace ah::common {
namespace {

TEST(Splitmix64Test, DeterministicSequence) {
  std::uint64_t a = 42;
  std::uint64_t b = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(a), splitmix64(b));
  }
}

TEST(Splitmix64Test, AdvancesState) {
  std::uint64_t state = 7;
  const auto first = splitmix64(state);
  const auto second = splitmix64(state);
  EXPECT_NE(first, second);
}

TEST(MixSeedTest, OrderSensitive) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
}

TEST(MixSeedTest, Deterministic) {
  EXPECT_EQ(mix_seed(123, 456), mix_seed(123, 456));
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitStreamsAreIndependentlySeeded) {
  Rng base(5);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1() == s2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values appear
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(3.5);
  EXPECT_NEAR(sum / kDraws, 3.5, 0.05);
}

TEST(RngTest, ExponentialAlwaysPositive) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(41);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(43);
  std::vector<double> draws;
  constexpr int kDraws = 50001;
  draws.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) draws.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(draws.begin(), draws.begin() + kDraws / 2, draws.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(draws[kDraws / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(47);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ParetoLowerBound) {
  Rng rng(59);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace ah::common
