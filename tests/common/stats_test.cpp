#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ah::common {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SumMatches) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.sum(), 5050.0, 1e-9);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    left.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    right.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_EQ(percentile(v, 0.5), 3.0);
}

TEST(PercentileTest, ExtremeQuantiles) {
  const std::vector<double> v{4.0, 2.0, 8.0, 6.0};
  EXPECT_EQ(percentile(v, 0.0), 2.0);
  EXPECT_EQ(percentile(v, 1.0), 8.0);
}

TEST(PercentileTest, ClampsQuantile) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_EQ(percentile(v, -0.5), 1.0);
  EXPECT_EQ(percentile(v, 1.5), 2.0);
}

TEST(MeanStddevOfTest, MatchRunningStats) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(stddev_of(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(HistogramTest, CountsFallIntoBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeSaturates) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1000.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(HistogramTest, BucketLowBoundaries) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(4), 18.0);
}

TEST(EwmaTest, FirstSampleSeeds) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_EQ(e.value(), 10.0);
}

TEST(EwmaTest, BlendsTowardNewSamples) {
  Ewma e(0.5);
  e.add(10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(EwmaTest, ResetForgets) {
  Ewma e(0.3);
  e.add(5.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  e.add(7.0);
  EXPECT_EQ(e.value(), 7.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

}  // namespace
}  // namespace ah::common
