#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ah::common {
namespace {

TEST(ThreadPoolTest, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, SubmitAcceptsMoveOnlyTask) {
  ThreadPool pool(1);
  auto future =
      pool.submit([owned = std::make_unique<int>(21)] { return *owned * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ParallelForFirstExceptionWinsUnderConcurrentThrows) {
  // Every task throws from several threads at once; the propagated
  // exception must deterministically be the lowest-index one, not
  // whichever thread won the race.
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.parallel_for(16, [](std::size_t i) {
        throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "parallel_for must rethrow";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "0");
    }
  }
}

TEST(ThreadPoolTest, ParallelForWaitsForAllTasksWhenOneThrows) {
  // Regression guard for the lifetime edge case: an early throw must not
  // return control (and destroy `fn`'s captures) while other tasks are
  // still running.
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&completed](std::size_t i) {
                          if (i == 0) throw std::logic_error("early");
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(5));
                          ++completed;
                        }),
      std::logic_error);
  // All non-throwing tasks finished before parallel_for returned.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPoolTest, ParallelForOversubscribed) {
  // Many more tasks than workers: everything still runs exactly once.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(256, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Destructor joins after draining queued work.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++running;
      int expect = peak.load();
      while (expect < now && !peak.compare_exchange_weak(expect, now)) {
      }
      // Busy-wait a little to force overlap.
      // The empty asm keeps the loop from being optimized away (volatile
      // induction variables are deprecated in C++20).
      for (int spin = 0; spin < 100000; ++spin) {
        asm volatile("");
      }
      --running;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 1);
  EXPECT_LE(peak.load(), 2);
}

}  // namespace
}  // namespace ah::common
