#include "common/inline_function.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>

namespace ah::common {
namespace {

using VoidFn = InlineFunction<void()>;
using IntFn = InlineFunction<int(int, int)>;

TEST(InlineFunctionTest, DefaultIsEmpty) {
  VoidFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, CallsSmallLambda) {
  int hits = 0;
  VoidFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturn) {
  IntFn add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(40, 2), 42);
}

TEST(InlineFunctionTest, SmallCaptureStaysInline) {
  struct Small {
    void* a;
    void* b;
    void operator()() {}
  };
  struct Big {
    char blob[128];
    void operator()() {}
  };
  static_assert(VoidFn::stores_inline<Small>());
  static_assert(!VoidFn::stores_inline<Big>());
}

TEST(InlineFunctionTest, HeapFallbackStillCalls) {
  struct Big {
    char blob[128] = {};
    int result = 7;
    int operator()(int a, int b) { return result + a + b; }
  };
  InlineFunction<int(int, int)> fn(Big{});
  EXPECT_EQ(fn(1, 2), 10);
}

TEST(InlineFunctionTest, MovePreservesTargetAndEmptiesSource) {
  int hits = 0;
  VoidFn source([&hits] { ++hits; });
  VoidFn destination(std::move(source));
  EXPECT_FALSE(static_cast<bool>(source));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(destination));
  destination();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunctionTest, MoveAssignmentDestroysPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  VoidFn fn([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  fn = VoidFn([] {});
  EXPECT_EQ(counter.use_count(), 1);  // old closure destroyed
}

TEST(InlineFunctionTest, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    VoidFn fn([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFunctionTest, HeapTargetReleasedExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  struct Big {
    std::shared_ptr<int> keep;
    char blob[120] = {};
    void operator()() {}
  };
  {
    VoidFn fn(Big{counter, {}});
    EXPECT_EQ(counter.use_count(), 2);
    VoidFn moved(std::move(fn));
    EXPECT_EQ(counter.use_count(), 2);  // ownership transferred, not copied
    moved();
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFunctionTest, HoldsMoveOnlyCallable) {
  auto owned = std::make_unique<int>(99);
  InlineFunction<int()> fn([p = std::move(owned)] { return *p; });
  EXPECT_EQ(fn(), 99);
}

TEST(InlineFunctionTest, ResetEmpties) {
  VoidFn fn([] {});
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, WrapsStdFunction) {
  std::function<void()> wrapped;
  int hits = 0;
  wrapped = [&hits] { ++hits; };
  VoidFn fn(wrapped);  // copies the std::function into the buffer
  fn();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace ah::common
