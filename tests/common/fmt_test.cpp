#include "common/fmt.hpp"

#include <gtest/gtest.h>

namespace ah::common {
namespace {

TEST(FmtTest, PlainPlaceholders) {
  EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(FmtTest, NoPlaceholders) {
  EXPECT_EQ(format("hello"), "hello");
}

TEST(FmtTest, StringsAndChars) {
  EXPECT_EQ(format("{}-{}", "ab", 'c'), "ab-c");
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.6), "3");
}

TEST(FmtTest, GeneralPrecision) {
  EXPECT_EQ(format("{:.3g}", 1234.5678), "1.23e+03");
}

TEST(FmtTest, RightAlign) {
  EXPECT_EQ(format("{:>6}", 42), "    42");
}

TEST(FmtTest, LeftAlign) {
  EXPECT_EQ(format("{:<6}|", 42), "42    |");
}

TEST(FmtTest, AlignWithPrecision) {
  EXPECT_EQ(format("{:>8.2f}", 3.14159), "    3.14");
}

TEST(FmtTest, EscapedBraces) {
  EXPECT_EQ(format("{{}}"), "{}");
  EXPECT_EQ(format("{{{}}}", 7), "{7}");
}

TEST(FmtTest, ExtraArgumentsIgnored) {
  EXPECT_EQ(format("{}", 1, 2, 3), "1");
}

TEST(FmtTest, MissingArgumentThrows) {
  EXPECT_THROW((void)format("{} {}", 1), std::invalid_argument);
}

TEST(FmtTest, UnbalancedBraceThrows) {
  EXPECT_THROW((void)format("{oops", 1), std::invalid_argument);
}

TEST(FmtTest, UnsupportedSpecThrows) {
  EXPECT_THROW((void)format("{:x}", 255), std::invalid_argument);
}

TEST(FmtTest, BoolAndNegative) {
  EXPECT_EQ(format("{} {}", true, -5), "1 -5");
}

TEST(FmtTest, StreamStateRestoredBetweenPlaceholders) {
  // The precision spec applied to the first value must not leak into the
  // second.
  EXPECT_EQ(format("{:.1f} {}", 1.25, 2.5), "1.2 2.5");
}

}  // namespace
}  // namespace ah::common
