#include "common/table.hpp"

#include <gtest/gtest.h>

namespace ah::common {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 22"), std::string::npos);
}

TEST(TextTableTest, ColumnsPadToWidestCell) {
  TextTable t({"h"});
  t.add_row({"longer-cell"});
  const std::string out = t.to_string();
  // The header row must be padded to the data width.
  EXPECT_NE(out.find("| h           |"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(TextTableTest, ExtraCellsDropped) {
  TextTable t({"only"});
  t.add_row({"kept", "dropped"});
  EXPECT_EQ(t.to_string().find("dropped"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(5.0, 0), "5");
}

TEST(TextTableTest, PercentFormats) {
  EXPECT_EQ(TextTable::percent(0.163, 1), "16.3%");
  EXPECT_EQ(TextTable::percent(1.0, 0), "100%");
}

TEST(TextTableTest, SeparatorsPresent) {
  TextTable t({"x"});
  t.add_row({"1"});
  const std::string out = t.to_string();
  // 3 separator lines: top, under-header, bottom.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace ah::common
