#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ah::common {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "csv_test_out.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_back() {
    std::ifstream in(path_);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"iter", "wips"});
    w.write_row({"0", "110.5"});
    w.write_row({1.0, 112.25});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(read_back(), "iter,wips\n0,110.5\n1,112.25\n");
}

TEST_F(CsvTest, WrongArityThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.write_row({std::string("only-one")}), std::invalid_argument);
}

TEST_F(CsvTest, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvEscapeTest, PlainCellUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaQuoted) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuoteDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace ah::common
