#include "common/units.hpp"

#include <gtest/gtest.h>

namespace ah::common {
namespace {

TEST(SimTimeTest, Constructors) {
  EXPECT_EQ(SimTime::zero().as_micros(), 0);
  EXPECT_EQ(SimTime::micros(5).as_micros(), 5);
  EXPECT_EQ(SimTime::millis(3).as_micros(), 3000);
  EXPECT_EQ(SimTime::seconds(2.5).as_micros(), 2500000);
}

TEST(SimTimeTest, Conversions) {
  const SimTime t = SimTime::millis(1500);
  EXPECT_DOUBLE_EQ(t.as_millis(), 1500.0);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 1.5);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::millis(10);
  const SimTime b = SimTime::millis(4);
  EXPECT_EQ((a + b).as_micros(), 14000);
  EXPECT_EQ((a - b).as_micros(), 6000);
  EXPECT_EQ((a * 3).as_micros(), 30000);
  EXPECT_EQ((3 * a).as_micros(), 30000);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimTimeTest, ScalingByDouble) {
  const SimTime a = SimTime::millis(10);
  EXPECT_EQ((a * 1.5).as_micros(), 15000);
  EXPECT_EQ((a * 0.0).as_micros(), 0);
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = SimTime::millis(1);
  t += SimTime::millis(2);
  EXPECT_EQ(t.as_micros(), 3000);
  t -= SimTime::millis(1);
  EXPECT_EQ(t.as_micros(), 2000);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

TEST(BytesTest, Literals) {
  EXPECT_EQ(4_KiB, 4096);
  EXPECT_EQ(2_MiB, 2 * 1024 * 1024);
}

}  // namespace
}  // namespace ah::common
