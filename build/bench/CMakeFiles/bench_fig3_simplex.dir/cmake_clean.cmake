file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_simplex.dir/bench_fig3_simplex.cpp.o"
  "CMakeFiles/bench_fig3_simplex.dir/bench_fig3_simplex.cpp.o.d"
  "bench_fig3_simplex"
  "bench_fig3_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
