# Empty dependencies file for bench_fig7_reconfig.
# This may be replaced when dependencies are built.
