file(REMOVE_RECURSE
  "CMakeFiles/ah_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ah_bench_util.dir/bench_util.cpp.o.d"
  "libah_bench_util.a"
  "libah_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
