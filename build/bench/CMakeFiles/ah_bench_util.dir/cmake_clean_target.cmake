file(REMOVE_RECURSE
  "libah_bench_util.a"
)
