# Empty dependencies file for ah_bench_util.
# This may be replaced when dependencies are built.
