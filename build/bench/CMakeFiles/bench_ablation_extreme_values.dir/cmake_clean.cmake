file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extreme_values.dir/bench_ablation_extreme_values.cpp.o"
  "CMakeFiles/bench_ablation_extreme_values.dir/bench_ablation_extreme_values.cpp.o.d"
  "bench_ablation_extreme_values"
  "bench_ablation_extreme_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extreme_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
