# Empty compiler generated dependencies file for bench_ablation_extreme_values.
# This may be replaced when dependencies are built.
