file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_responsiveness.dir/bench_fig5_responsiveness.cpp.o"
  "CMakeFiles/bench_fig5_responsiveness.dir/bench_fig5_responsiveness.cpp.o.d"
  "bench_fig5_responsiveness"
  "bench_fig5_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
