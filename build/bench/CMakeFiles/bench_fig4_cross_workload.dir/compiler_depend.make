# Empty compiler generated dependencies file for bench_fig4_cross_workload.
# This may be replaced when dependencies are built.
