# Empty dependencies file for bench_table1_mixes.
# This may be replaced when dependencies are built.
