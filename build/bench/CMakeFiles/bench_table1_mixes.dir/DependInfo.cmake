
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_mixes.cpp" "bench/CMakeFiles/bench_table1_mixes.dir/bench_table1_mixes.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_mixes.dir/bench_table1_mixes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ah_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harmony/CMakeFiles/ah_harmony.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcw/CMakeFiles/ah_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/webstack/CMakeFiles/ah_webstack.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
