# Empty dependencies file for bench_ablation_reconfig_cost.
# This may be replaced when dependencies are built.
