# Empty dependencies file for bench_table4_cluster_tuning.
# This may be replaced when dependencies are built.
