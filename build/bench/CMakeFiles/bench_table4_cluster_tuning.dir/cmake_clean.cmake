file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cluster_tuning.dir/bench_table4_cluster_tuning.cpp.o"
  "CMakeFiles/bench_table4_cluster_tuning.dir/bench_table4_cluster_tuning.cpp.o.d"
  "bench_table4_cluster_tuning"
  "bench_table4_cluster_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cluster_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
