
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harmony/baselines_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/baselines_test.cpp.o.d"
  "/root/repo/tests/harmony/client_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/client_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/client_test.cpp.o.d"
  "/root/repo/tests/harmony/config_io_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/config_io_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/config_io_test.cpp.o.d"
  "/root/repo/tests/harmony/library_layer_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/library_layer_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/library_layer_test.cpp.o.d"
  "/root/repo/tests/harmony/memory_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/memory_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/memory_test.cpp.o.d"
  "/root/repo/tests/harmony/parameter_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/parameter_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/parameter_test.cpp.o.d"
  "/root/repo/tests/harmony/reconfig_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/reconfig_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/reconfig_test.cpp.o.d"
  "/root/repo/tests/harmony/server_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/server_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/server_test.cpp.o.d"
  "/root/repo/tests/harmony/session_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/session_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/session_test.cpp.o.d"
  "/root/repo/tests/harmony/simplex_test.cpp" "tests/CMakeFiles/harmony_test.dir/harmony/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/harmony_test.dir/harmony/simplex_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harmony/CMakeFiles/ah_harmony.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcw/CMakeFiles/ah_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/webstack/CMakeFiles/ah_webstack.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
