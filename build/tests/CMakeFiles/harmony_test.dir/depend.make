# Empty dependencies file for harmony_test.
# This may be replaced when dependencies are built.
