file(REMOVE_RECURSE
  "CMakeFiles/harmony_test.dir/harmony/baselines_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/baselines_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/client_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/client_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/config_io_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/config_io_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/library_layer_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/library_layer_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/memory_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/memory_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/parameter_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/parameter_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/reconfig_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/reconfig_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/server_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/server_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/session_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/session_test.cpp.o.d"
  "CMakeFiles/harmony_test.dir/harmony/simplex_test.cpp.o"
  "CMakeFiles/harmony_test.dir/harmony/simplex_test.cpp.o.d"
  "harmony_test"
  "harmony_test.pdb"
  "harmony_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
