
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/csv_test.cpp" "tests/CMakeFiles/common_test.dir/common/csv_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/csv_test.cpp.o.d"
  "/root/repo/tests/common/fmt_test.cpp" "tests/CMakeFiles/common_test.dir/common/fmt_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/fmt_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/common_test.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/common_test.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/table_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cpp.o.d"
  "/root/repo/tests/common/units_test.cpp" "tests/CMakeFiles/common_test.dir/common/units_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harmony/CMakeFiles/ah_harmony.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcw/CMakeFiles/ah_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/webstack/CMakeFiles/ah_webstack.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
