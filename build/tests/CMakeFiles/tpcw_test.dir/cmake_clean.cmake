file(REMOVE_RECURSE
  "CMakeFiles/tpcw_test.dir/tpcw/constraints_test.cpp.o"
  "CMakeFiles/tpcw_test.dir/tpcw/constraints_test.cpp.o.d"
  "CMakeFiles/tpcw_test.dir/tpcw/interactions_test.cpp.o"
  "CMakeFiles/tpcw_test.dir/tpcw/interactions_test.cpp.o.d"
  "CMakeFiles/tpcw_test.dir/tpcw/metrics_test.cpp.o"
  "CMakeFiles/tpcw_test.dir/tpcw/metrics_test.cpp.o.d"
  "CMakeFiles/tpcw_test.dir/tpcw/mix_test.cpp.o"
  "CMakeFiles/tpcw_test.dir/tpcw/mix_test.cpp.o.d"
  "CMakeFiles/tpcw_test.dir/tpcw/workload_test.cpp.o"
  "CMakeFiles/tpcw_test.dir/tpcw/workload_test.cpp.o.d"
  "CMakeFiles/tpcw_test.dir/tpcw/zipf_test.cpp.o"
  "CMakeFiles/tpcw_test.dir/tpcw/zipf_test.cpp.o.d"
  "tpcw_test"
  "tpcw_test.pdb"
  "tpcw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
