# Empty dependencies file for webstack_test.
# This may be replaced when dependencies are built.
