
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/webstack/app_server_test.cpp" "tests/CMakeFiles/webstack_test.dir/webstack/app_server_test.cpp.o" "gcc" "tests/CMakeFiles/webstack_test.dir/webstack/app_server_test.cpp.o.d"
  "/root/repo/tests/webstack/db_server_test.cpp" "tests/CMakeFiles/webstack_test.dir/webstack/db_server_test.cpp.o" "gcc" "tests/CMakeFiles/webstack_test.dir/webstack/db_server_test.cpp.o.d"
  "/root/repo/tests/webstack/lru_cache_test.cpp" "tests/CMakeFiles/webstack_test.dir/webstack/lru_cache_test.cpp.o" "gcc" "tests/CMakeFiles/webstack_test.dir/webstack/lru_cache_test.cpp.o.d"
  "/root/repo/tests/webstack/params_test.cpp" "tests/CMakeFiles/webstack_test.dir/webstack/params_test.cpp.o" "gcc" "tests/CMakeFiles/webstack_test.dir/webstack/params_test.cpp.o.d"
  "/root/repo/tests/webstack/property_sweeps_test.cpp" "tests/CMakeFiles/webstack_test.dir/webstack/property_sweeps_test.cpp.o" "gcc" "tests/CMakeFiles/webstack_test.dir/webstack/property_sweeps_test.cpp.o.d"
  "/root/repo/tests/webstack/proxy_server_test.cpp" "tests/CMakeFiles/webstack_test.dir/webstack/proxy_server_test.cpp.o" "gcc" "tests/CMakeFiles/webstack_test.dir/webstack/proxy_server_test.cpp.o.d"
  "/root/repo/tests/webstack/router_test.cpp" "tests/CMakeFiles/webstack_test.dir/webstack/router_test.cpp.o" "gcc" "tests/CMakeFiles/webstack_test.dir/webstack/router_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ah_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harmony/CMakeFiles/ah_harmony.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcw/CMakeFiles/ah_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/webstack/CMakeFiles/ah_webstack.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
