file(REMOVE_RECURSE
  "CMakeFiles/webstack_test.dir/webstack/app_server_test.cpp.o"
  "CMakeFiles/webstack_test.dir/webstack/app_server_test.cpp.o.d"
  "CMakeFiles/webstack_test.dir/webstack/db_server_test.cpp.o"
  "CMakeFiles/webstack_test.dir/webstack/db_server_test.cpp.o.d"
  "CMakeFiles/webstack_test.dir/webstack/lru_cache_test.cpp.o"
  "CMakeFiles/webstack_test.dir/webstack/lru_cache_test.cpp.o.d"
  "CMakeFiles/webstack_test.dir/webstack/params_test.cpp.o"
  "CMakeFiles/webstack_test.dir/webstack/params_test.cpp.o.d"
  "CMakeFiles/webstack_test.dir/webstack/property_sweeps_test.cpp.o"
  "CMakeFiles/webstack_test.dir/webstack/property_sweeps_test.cpp.o.d"
  "CMakeFiles/webstack_test.dir/webstack/proxy_server_test.cpp.o"
  "CMakeFiles/webstack_test.dir/webstack/proxy_server_test.cpp.o.d"
  "CMakeFiles/webstack_test.dir/webstack/router_test.cpp.o"
  "CMakeFiles/webstack_test.dir/webstack/router_test.cpp.o.d"
  "webstack_test"
  "webstack_test.pdb"
  "webstack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webstack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
