file(REMOVE_RECURSE
  "CMakeFiles/cluster_inspect.dir/cluster_inspect.cpp.o"
  "CMakeFiles/cluster_inspect.dir/cluster_inspect.cpp.o.d"
  "cluster_inspect"
  "cluster_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
