# Empty compiler generated dependencies file for cluster_inspect.
# This may be replaced when dependencies are built.
