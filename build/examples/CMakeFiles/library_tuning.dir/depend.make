# Empty dependencies file for library_tuning.
# This may be replaced when dependencies are built.
