file(REMOVE_RECURSE
  "CMakeFiles/library_tuning.dir/library_tuning.cpp.o"
  "CMakeFiles/library_tuning.dir/library_tuning.cpp.o.d"
  "library_tuning"
  "library_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
