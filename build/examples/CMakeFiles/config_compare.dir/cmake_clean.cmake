file(REMOVE_RECURSE
  "CMakeFiles/config_compare.dir/config_compare.cpp.o"
  "CMakeFiles/config_compare.dir/config_compare.cpp.o.d"
  "config_compare"
  "config_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
