# Empty compiler generated dependencies file for config_compare.
# This may be replaced when dependencies are built.
