# Empty dependencies file for config_compare.
# This may be replaced when dependencies are built.
