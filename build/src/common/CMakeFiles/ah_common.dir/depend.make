# Empty dependencies file for ah_common.
# This may be replaced when dependencies are built.
