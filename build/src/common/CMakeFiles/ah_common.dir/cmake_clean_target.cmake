file(REMOVE_RECURSE
  "libah_common.a"
)
