file(REMOVE_RECURSE
  "CMakeFiles/ah_common.dir/csv.cpp.o"
  "CMakeFiles/ah_common.dir/csv.cpp.o.d"
  "CMakeFiles/ah_common.dir/log.cpp.o"
  "CMakeFiles/ah_common.dir/log.cpp.o.d"
  "CMakeFiles/ah_common.dir/stats.cpp.o"
  "CMakeFiles/ah_common.dir/stats.cpp.o.d"
  "CMakeFiles/ah_common.dir/table.cpp.o"
  "CMakeFiles/ah_common.dir/table.cpp.o.d"
  "CMakeFiles/ah_common.dir/thread_pool.cpp.o"
  "CMakeFiles/ah_common.dir/thread_pool.cpp.o.d"
  "libah_common.a"
  "libah_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
