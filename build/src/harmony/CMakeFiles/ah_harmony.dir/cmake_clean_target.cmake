file(REMOVE_RECURSE
  "libah_harmony.a"
)
