file(REMOVE_RECURSE
  "CMakeFiles/ah_harmony.dir/baselines.cpp.o"
  "CMakeFiles/ah_harmony.dir/baselines.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/client.cpp.o"
  "CMakeFiles/ah_harmony.dir/client.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/config_io.cpp.o"
  "CMakeFiles/ah_harmony.dir/config_io.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/library_layer.cpp.o"
  "CMakeFiles/ah_harmony.dir/library_layer.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/memory.cpp.o"
  "CMakeFiles/ah_harmony.dir/memory.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/parameter.cpp.o"
  "CMakeFiles/ah_harmony.dir/parameter.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/reconfig.cpp.o"
  "CMakeFiles/ah_harmony.dir/reconfig.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/server.cpp.o"
  "CMakeFiles/ah_harmony.dir/server.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/session.cpp.o"
  "CMakeFiles/ah_harmony.dir/session.cpp.o.d"
  "CMakeFiles/ah_harmony.dir/simplex.cpp.o"
  "CMakeFiles/ah_harmony.dir/simplex.cpp.o.d"
  "libah_harmony.a"
  "libah_harmony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_harmony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
