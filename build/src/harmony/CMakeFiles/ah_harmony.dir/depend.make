# Empty dependencies file for ah_harmony.
# This may be replaced when dependencies are built.
