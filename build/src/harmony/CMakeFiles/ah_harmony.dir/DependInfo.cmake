
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harmony/baselines.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/baselines.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/baselines.cpp.o.d"
  "/root/repo/src/harmony/client.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/client.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/client.cpp.o.d"
  "/root/repo/src/harmony/config_io.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/config_io.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/config_io.cpp.o.d"
  "/root/repo/src/harmony/library_layer.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/library_layer.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/library_layer.cpp.o.d"
  "/root/repo/src/harmony/memory.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/memory.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/memory.cpp.o.d"
  "/root/repo/src/harmony/parameter.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/parameter.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/parameter.cpp.o.d"
  "/root/repo/src/harmony/reconfig.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/reconfig.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/reconfig.cpp.o.d"
  "/root/repo/src/harmony/server.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/server.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/server.cpp.o.d"
  "/root/repo/src/harmony/session.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/session.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/session.cpp.o.d"
  "/root/repo/src/harmony/simplex.cpp" "src/harmony/CMakeFiles/ah_harmony.dir/simplex.cpp.o" "gcc" "src/harmony/CMakeFiles/ah_harmony.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
