file(REMOVE_RECURSE
  "libah_core.a"
)
