
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/ah_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/reconfig_controller.cpp" "src/core/CMakeFiles/ah_core.dir/reconfig_controller.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/reconfig_controller.cpp.o.d"
  "/root/repo/src/core/system_model.cpp" "src/core/CMakeFiles/ah_core.dir/system_model.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/system_model.cpp.o.d"
  "/root/repo/src/core/tuning_driver.cpp" "src/core/CMakeFiles/ah_core.dir/tuning_driver.cpp.o" "gcc" "src/core/CMakeFiles/ah_core.dir/tuning_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harmony/CMakeFiles/ah_harmony.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcw/CMakeFiles/ah_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/webstack/CMakeFiles/ah_webstack.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
