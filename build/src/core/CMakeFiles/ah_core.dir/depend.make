# Empty dependencies file for ah_core.
# This may be replaced when dependencies are built.
