file(REMOVE_RECURSE
  "CMakeFiles/ah_core.dir/experiment.cpp.o"
  "CMakeFiles/ah_core.dir/experiment.cpp.o.d"
  "CMakeFiles/ah_core.dir/reconfig_controller.cpp.o"
  "CMakeFiles/ah_core.dir/reconfig_controller.cpp.o.d"
  "CMakeFiles/ah_core.dir/system_model.cpp.o"
  "CMakeFiles/ah_core.dir/system_model.cpp.o.d"
  "CMakeFiles/ah_core.dir/tuning_driver.cpp.o"
  "CMakeFiles/ah_core.dir/tuning_driver.cpp.o.d"
  "libah_core.a"
  "libah_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
