file(REMOVE_RECURSE
  "libah_sim.a"
)
