# Empty compiler generated dependencies file for ah_sim.
# This may be replaced when dependencies are built.
