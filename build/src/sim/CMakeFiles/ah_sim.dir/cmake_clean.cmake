file(REMOVE_RECURSE
  "CMakeFiles/ah_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ah_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ah_sim.dir/monitor.cpp.o"
  "CMakeFiles/ah_sim.dir/monitor.cpp.o.d"
  "CMakeFiles/ah_sim.dir/resource.cpp.o"
  "CMakeFiles/ah_sim.dir/resource.cpp.o.d"
  "CMakeFiles/ah_sim.dir/simulator.cpp.o"
  "CMakeFiles/ah_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ah_sim.dir/slot_pool.cpp.o"
  "CMakeFiles/ah_sim.dir/slot_pool.cpp.o.d"
  "libah_sim.a"
  "libah_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
