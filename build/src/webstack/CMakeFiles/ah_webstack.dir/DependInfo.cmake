
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webstack/app_server.cpp" "src/webstack/CMakeFiles/ah_webstack.dir/app_server.cpp.o" "gcc" "src/webstack/CMakeFiles/ah_webstack.dir/app_server.cpp.o.d"
  "/root/repo/src/webstack/db_server.cpp" "src/webstack/CMakeFiles/ah_webstack.dir/db_server.cpp.o" "gcc" "src/webstack/CMakeFiles/ah_webstack.dir/db_server.cpp.o.d"
  "/root/repo/src/webstack/lru_cache.cpp" "src/webstack/CMakeFiles/ah_webstack.dir/lru_cache.cpp.o" "gcc" "src/webstack/CMakeFiles/ah_webstack.dir/lru_cache.cpp.o.d"
  "/root/repo/src/webstack/params.cpp" "src/webstack/CMakeFiles/ah_webstack.dir/params.cpp.o" "gcc" "src/webstack/CMakeFiles/ah_webstack.dir/params.cpp.o.d"
  "/root/repo/src/webstack/proxy_server.cpp" "src/webstack/CMakeFiles/ah_webstack.dir/proxy_server.cpp.o" "gcc" "src/webstack/CMakeFiles/ah_webstack.dir/proxy_server.cpp.o.d"
  "/root/repo/src/webstack/router.cpp" "src/webstack/CMakeFiles/ah_webstack.dir/router.cpp.o" "gcc" "src/webstack/CMakeFiles/ah_webstack.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
