file(REMOVE_RECURSE
  "libah_webstack.a"
)
