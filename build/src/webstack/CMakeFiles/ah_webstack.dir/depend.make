# Empty dependencies file for ah_webstack.
# This may be replaced when dependencies are built.
