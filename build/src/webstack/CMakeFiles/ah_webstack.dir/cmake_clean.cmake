file(REMOVE_RECURSE
  "CMakeFiles/ah_webstack.dir/app_server.cpp.o"
  "CMakeFiles/ah_webstack.dir/app_server.cpp.o.d"
  "CMakeFiles/ah_webstack.dir/db_server.cpp.o"
  "CMakeFiles/ah_webstack.dir/db_server.cpp.o.d"
  "CMakeFiles/ah_webstack.dir/lru_cache.cpp.o"
  "CMakeFiles/ah_webstack.dir/lru_cache.cpp.o.d"
  "CMakeFiles/ah_webstack.dir/params.cpp.o"
  "CMakeFiles/ah_webstack.dir/params.cpp.o.d"
  "CMakeFiles/ah_webstack.dir/proxy_server.cpp.o"
  "CMakeFiles/ah_webstack.dir/proxy_server.cpp.o.d"
  "CMakeFiles/ah_webstack.dir/router.cpp.o"
  "CMakeFiles/ah_webstack.dir/router.cpp.o.d"
  "libah_webstack.a"
  "libah_webstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_webstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
