file(REMOVE_RECURSE
  "libah_tpcw.a"
)
