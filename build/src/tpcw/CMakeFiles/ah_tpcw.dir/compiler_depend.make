# Empty compiler generated dependencies file for ah_tpcw.
# This may be replaced when dependencies are built.
