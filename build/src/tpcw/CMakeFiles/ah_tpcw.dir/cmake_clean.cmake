file(REMOVE_RECURSE
  "CMakeFiles/ah_tpcw.dir/constraints.cpp.o"
  "CMakeFiles/ah_tpcw.dir/constraints.cpp.o.d"
  "CMakeFiles/ah_tpcw.dir/interactions.cpp.o"
  "CMakeFiles/ah_tpcw.dir/interactions.cpp.o.d"
  "CMakeFiles/ah_tpcw.dir/metrics.cpp.o"
  "CMakeFiles/ah_tpcw.dir/metrics.cpp.o.d"
  "CMakeFiles/ah_tpcw.dir/mix.cpp.o"
  "CMakeFiles/ah_tpcw.dir/mix.cpp.o.d"
  "CMakeFiles/ah_tpcw.dir/workload.cpp.o"
  "CMakeFiles/ah_tpcw.dir/workload.cpp.o.d"
  "CMakeFiles/ah_tpcw.dir/zipf.cpp.o"
  "CMakeFiles/ah_tpcw.dir/zipf.cpp.o.d"
  "libah_tpcw.a"
  "libah_tpcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_tpcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
