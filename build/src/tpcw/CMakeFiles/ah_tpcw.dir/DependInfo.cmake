
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpcw/constraints.cpp" "src/tpcw/CMakeFiles/ah_tpcw.dir/constraints.cpp.o" "gcc" "src/tpcw/CMakeFiles/ah_tpcw.dir/constraints.cpp.o.d"
  "/root/repo/src/tpcw/interactions.cpp" "src/tpcw/CMakeFiles/ah_tpcw.dir/interactions.cpp.o" "gcc" "src/tpcw/CMakeFiles/ah_tpcw.dir/interactions.cpp.o.d"
  "/root/repo/src/tpcw/metrics.cpp" "src/tpcw/CMakeFiles/ah_tpcw.dir/metrics.cpp.o" "gcc" "src/tpcw/CMakeFiles/ah_tpcw.dir/metrics.cpp.o.d"
  "/root/repo/src/tpcw/mix.cpp" "src/tpcw/CMakeFiles/ah_tpcw.dir/mix.cpp.o" "gcc" "src/tpcw/CMakeFiles/ah_tpcw.dir/mix.cpp.o.d"
  "/root/repo/src/tpcw/workload.cpp" "src/tpcw/CMakeFiles/ah_tpcw.dir/workload.cpp.o" "gcc" "src/tpcw/CMakeFiles/ah_tpcw.dir/workload.cpp.o.d"
  "/root/repo/src/tpcw/zipf.cpp" "src/tpcw/CMakeFiles/ah_tpcw.dir/zipf.cpp.o" "gcc" "src/tpcw/CMakeFiles/ah_tpcw.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/webstack/CMakeFiles/ah_webstack.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ah_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
