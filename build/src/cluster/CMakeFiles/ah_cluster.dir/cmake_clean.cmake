file(REMOVE_RECURSE
  "CMakeFiles/ah_cluster.dir/cluster.cpp.o"
  "CMakeFiles/ah_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/ah_cluster.dir/load_balancer.cpp.o"
  "CMakeFiles/ah_cluster.dir/load_balancer.cpp.o.d"
  "CMakeFiles/ah_cluster.dir/network.cpp.o"
  "CMakeFiles/ah_cluster.dir/network.cpp.o.d"
  "CMakeFiles/ah_cluster.dir/node.cpp.o"
  "CMakeFiles/ah_cluster.dir/node.cpp.o.d"
  "CMakeFiles/ah_cluster.dir/tier.cpp.o"
  "CMakeFiles/ah_cluster.dir/tier.cpp.o.d"
  "libah_cluster.a"
  "libah_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ah_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
