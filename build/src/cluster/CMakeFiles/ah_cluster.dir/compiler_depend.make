# Empty compiler generated dependencies file for ah_cluster.
# This may be replaced when dependencies are built.
