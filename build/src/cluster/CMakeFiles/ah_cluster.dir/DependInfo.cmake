
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/ah_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/ah_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/load_balancer.cpp" "src/cluster/CMakeFiles/ah_cluster.dir/load_balancer.cpp.o" "gcc" "src/cluster/CMakeFiles/ah_cluster.dir/load_balancer.cpp.o.d"
  "/root/repo/src/cluster/network.cpp" "src/cluster/CMakeFiles/ah_cluster.dir/network.cpp.o" "gcc" "src/cluster/CMakeFiles/ah_cluster.dir/network.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/ah_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/ah_cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/tier.cpp" "src/cluster/CMakeFiles/ah_cluster.dir/tier.cpp.o" "gcc" "src/cluster/CMakeFiles/ah_cluster.dir/tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ah_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ah_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
