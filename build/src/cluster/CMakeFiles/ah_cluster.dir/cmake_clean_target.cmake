file(REMOVE_RECURSE
  "libah_cluster.a"
)
